//===- check/Explorer.cpp - Systematic interleaving explorer --------------===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
//
// Structure:
//
//  - Coop: a cooperative scheduler plus one worker thread per program
//    thread. Exactly one thread (scheduler or one worker) runs at any
//    instant; control moves through a mutex/condvar handoff. Workers yield
//    back at every step boundary and at every schedYield point inside the
//    STM runtime (Config::Yield). A yield that carries a record pointer
//    marks the thread *blocked*: it is not schedulable until the record
//    word changes, which keeps exhaustive enumeration finite in the
//    presence of spin loops. If every live thread is blocked (a genuine
//    cross-thread wait cycle), the blocked threads become schedulable
//    again so the runtime's ConflictPauseLimit abort paths can fire.
//
//  - runOnce(): executes the program once under a forced schedule prefix
//    (default policy past the prefix: keep the running thread; otherwise
//    the lowest-numbered enabled thread), recording every decision point,
//    the trace, and the normalized outcome.
//
//  - explore(): CHESS-style depth-first enumeration over decision points
//    with a preemption bound, by re-running with ever-longer forced
//    prefixes; optionally followed by seeded random walks with unbounded
//    preemptions. Every outcome is checked against the Oracle.
//
//===----------------------------------------------------------------------===//

#include "check/Explorer.h"

#include "rt/Heap.h"
#include "stm/AffineGate.h"
#include "stm/Barriers.h"
#include "stm/LazyTxn.h"
#include "stm/Snapshot.h"
#include "stm/Txn.h"
#include "support/Rng.h"

#include <algorithm>
#include <cctype>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>

using namespace satm;
using namespace satm::check;
using namespace satm::stm;
using litmus::Regime;
using rt::Object;

std::string satm::check::variantName(const ConfigVariant &V) {
  std::ostringstream OS;
  OS << "g" << V.LogGranularitySlots << (V.ReverseWriteback ? "+revwb" : "");
  if (V.IrrevocableAfterAborts)
    OS << "+irr" << V.IrrevocableAfterAborts;
  if (V.KarmaPriority)
    OS << "+karma";
  if (V.SnapshotPlane)
    OS << "+snap";
  if (V.QuiesceOnCommit)
    OS << "+qsc";
  return OS.str();
}

namespace {

class Coop;

/// Identifies the current worker to the global Config::Yield trampoline.
struct WorkerTls {
  Coop *C = nullptr;
  int Thread = -1;
};
thread_local WorkerTls TlsWorker;

void yieldTrampoline(YieldPoint P, const std::atomic<Word> *Rec,
                     Word Observed);

/// Cooperative scheduler and worker pool for one (program, regime, config
/// variant). Reused across the many runs of an exploration so worker
/// threads are spawned once.
class Coop {
public:
  struct Decision {
    std::vector<uint8_t> Cands; ///< Schedulable threads; Prev first if able.
    int8_t Prev;                ///< Thread that ran before this decision.
    bool PrevEnabled;           ///< Prev could have continued.
    uint8_t Chosen;
  };

  struct RunRecord {
    std::vector<Decision> Decisions;
    std::vector<uint8_t> Choices;
    Trace Events;
    Outcome Observed;
    std::string Error; ///< Worker exception or schedule divergence.
    bool Livelock = false;
  };

  Coop(const Program &P, Regime R, const ConfigVariant &V)
      : Prog(P), R(R), NThreads(P.Threads.size()), Saved(config()) {
    Config C;
    C.DeaEnabled = false;
    C.LogGranularitySlots = V.LogGranularitySlots;
    C.ReverseWriteback = V.ReverseWriteback;
    C.IrrevocableAfterAborts = V.IrrevocableAfterAborts;
    C.KarmaPriority = V.KarmaPriority;
    C.CollectStats = false;
    C.QuiesceOnCommit = V.QuiesceOnCommit;
    C.SnapshotEnabled = V.SnapshotPlane;
    // Small so the all-blocked fallback resolves txn-txn deadlocks in few
    // scheduling grants; semantics are unchanged (abort and retry).
    C.ConflictPauseLimit = 12;
    C.Yield = &yieldTrampoline;
    config() = C;

    int MaxGate = -1;
    for (const auto &Th : P.Threads)
      for (const Segment &Seg : Th) {
        MaxGate = std::max(MaxGate, Seg.OwnedGate);
        for (int G : Seg.ForeignGates)
          MaxGate = std::max(MaxGate, G);
      }
    NumGates = static_cast<size_t>(MaxGate + 1);

    for (const ObjectSpec &Spec : P.Objects)
      Types.emplace_back(Spec.Name, Spec.Slots, Spec.RefSlots);
    LockType = std::make_unique<rt::TypeDescriptor>(
        "__lock", 1u, std::vector<uint32_t>{});

    Slots.resize(NThreads);
    Workers.reserve(NThreads);
    for (size_t T = 0; T < NThreads; ++T)
      Workers.emplace_back([this, T] { workerMain(static_cast<int>(T)); });
  }

  ~Coop() {
    {
      std::lock_guard<std::mutex> L(M);
      Exiting = true;
    }
    CV.notify_all();
    for (std::thread &W : Workers)
      W.join();
    config() = Saved;
  }

  Coop(const Coop &) = delete;
  Coop &operator=(const Coop &) = delete;

  /// Runs the program once. The first |Prefix| decisions are forced; past
  /// the prefix, RandomRng (if non-null) picks uniformly among candidates,
  /// otherwise the default policy applies.
  RunRecord runOnce(const std::vector<uint8_t> &Prefix, Rng *RandomRng,
                    uint32_t MaxGrants) {
    RunRecord RR;
    Cur = &RR;
    setupRun();

    std::unique_lock<std::mutex> L(M);
    int Prev = -1;
    size_t Di = 0;
    uint32_t Grants = 0;
    uint32_t FallbackRotor = 0;
    for (;;) {
      Decision D;
      D.Prev = static_cast<int8_t>(Prev);
      bool AllDone = true;
      std::vector<uint8_t> Enabled, BlockedAlive;
      for (size_t T = 0; T < NThreads; ++T) {
        ThreadSlot &S = Slots[T];
        if (S.St == WState::Done)
          continue;
        AllDone = false;
        // Sticky wake: transaction-record words can ABA (release then
        // re-acquire by the same descriptor restores the identical word),
        // so a blocked thread is woken by *any* change seen at *any*
        // decision point, not just a difference at this one. The runtime
        // never releases and re-acquires a record within a single grant
        // window (every acquire is preceded by a yield or a step pause),
        // so every release is visible at some decision.
        if (S.St == WState::Blocked &&
            S.BlockRec->load(std::memory_order_acquire) != S.BlockObserved)
          S.Woken = true;
        bool IsEnabled = S.St != WState::Blocked || S.Woken;
        (IsEnabled ? Enabled : BlockedAlive).push_back(
            static_cast<uint8_t>(T));
      }
      if (AllDone)
        break;
      // All live threads blocked on unchanged records: a genuine wait
      // cycle. Schedule the blocked threads anyway so the runtime's
      // bounded-pause abort paths break the cycle.
      std::vector<uint8_t> &Cands = Enabled.empty() ? BlockedAlive : Enabled;
      // Canonical order: the previously running thread first (so the
      // default choice never preempts), then ascending ids.
      D.PrevEnabled = false;
      if (Prev >= 0) {
        for (size_t I = 0; I < Cands.size(); ++I) {
          if (Cands[I] == Prev) {
            std::rotate(Cands.begin(), Cands.begin() + I,
                        Cands.begin() + I + 1);
            D.PrevEnabled = true;
            break;
          }
        }
      }
      D.Cands = Cands;

      if (++Grants > MaxGrants)
        RR.Livelock = true;

      uint8_t Chosen;
      if (Di < Prefix.size()) {
        Chosen = Prefix[Di];
        if (std::find(Cands.begin(), Cands.end(), Chosen) == Cands.end()) {
          RR.Error = "schedule diverged: forced thread " +
                     std::to_string(int(Chosen)) + " not schedulable at " +
                     "decision " + std::to_string(Di);
          // Fall back to the default policy so the run still drains.
          Chosen = Cands[0];
        }
      } else if (Enabled.empty()) {
        // All-blocked fallback: rotate through the blocked threads so every
        // one of them accrues grants. A fixed choice can starve the only
        // thread able to break the wait cycle — transactional spinners
        // abort (and release their records) after ConflictPauseLimit
        // grants, but non-transactional barrier spinners can only wait, so
        // granting one of those forever deadlocks the run.
        Chosen = Cands[FallbackRotor++ % Cands.size()];
      } else if (RR.Livelock) {
        // Livelock rescue. Two transactions can chase each other through
        // mutual abort-and-reacquire cycles forever under the Prev-first
        // default (the just-aborted thread is re-granted and re-acquires
        // the record its peer is waiting for). Strict lowest-id priority
        // drains any such cycle: a thread spinning on a held record hits
        // ConflictPauseLimit after finitely many grants, aborts, and
        // releases its records, so the minimum live thread always commits
        // within a bounded number of grants. The rescue choices are
        // recorded like any others, so replay stays exact.
        Chosen = *std::min_element(Cands.begin(), Cands.end());
      } else if (RandomRng) {
        Chosen = Cands[RandomRng->nextBelow(Cands.size())];
      } else {
        Chosen = Cands[0];
      }
      D.Chosen = Chosen;
      RR.Decisions.push_back(D);
      RR.Choices.push_back(Chosen);
      Di++;

      if (Grants > 50u * MaxGrants) {
        // The rescue policy terminates any program whose transactions make
        // progress when run alone; bail out loudly rather than hang the
        // whole test binary if that assumption is ever violated.
        std::fprintf(stderr, "check::Coop: runaway schedule in %s\n",
                     Prog.Name.c_str());
        for (size_t T = 0; T < NThreads; ++T)
          std::fprintf(stderr, "  t%zu state=%d\n", T, (int)Slots[T].St);
        size_t From = RR.Events.size() > 60 ? RR.Events.size() - 60 : 0;
        for (size_t I = From; I < RR.Events.size(); ++I)
          std::fprintf(stderr, "  %s\n",
                       formatEvent(Prog, RR.Events[I]).c_str());
        std::abort();
      }

      ThreadSlot &S = Slots[Chosen];
      S.St = WState::Granted;
      S.BlockRec = nullptr;
      CV.notify_all();
      CV.wait(L, [&] { return Slots[Chosen].St != WState::Granted; });
      Prev = Chosen;
    }
    L.unlock();

    collectOutcome(RR);
    Cur = nullptr;
    return RR;
  }

  const Program &program() const { return Prog; }

private:
  friend void yieldTrampoline(YieldPoint, const std::atomic<Word> *, Word);

  enum class WState : uint8_t { Idle, Granted, Yielded, Blocked, Done };

  struct ThreadSlot {
    WState St = WState::Done;
    const std::atomic<Word> *BlockRec = nullptr;
    Word BlockObserved = 0;
    bool Woken = false; ///< Sticky: record changed since the thread blocked.
  };

  //===------------------------------------------------------------------===
  // Per-run state.
  //===------------------------------------------------------------------===

  void setupRun() {
    // The version table is keyed by raw Object*; the previous run's heap is
    // about to be destroyed and its addresses reused.
    snap::resetTable();
    HeapPtr = std::make_unique<rt::Heap>(1u << 16);
    Objects.clear();
    PtrToIdx.clear();
    for (const rt::TypeDescriptor &T : Types)
      Objects.push_back(HeapPtr->allocate(&T, rt::BirthState::Shared));
    for (size_t I = 0; I < Objects.size(); ++I)
      PtrToIdx.emplace(Object::toWord(Objects[I]), static_cast<int>(I));
    for (size_t I = 0; I < Objects.size(); ++I) {
      const ObjectSpec &Spec = Prog.Objects[I];
      for (size_t S = 0; S < Spec.Init.size(); ++S)
        Objects[I]->rawStore(static_cast<uint32_t>(S),
                             denormalize(Spec.Init[S]));
    }
    LockObj = HeapPtr->allocate(LockType.get(), rt::BirthState::Shared);

    // Fresh gates every run: a worker exception inside a gated segment
    // would otherwise leak an open window or a foreign-intent count into
    // every subsequent run of the exploration.
    AffineGates.clear();
    for (size_t G = 0; G < NumGates; ++G)
      AffineGates.push_back(std::make_unique<AffineGate>());

    Regs.assign(NThreads, {});
    RegSnap.assign(NThreads, {});
    for (auto &R : Regs) {
      R.assign(Prog.RegCount, 0);
      for (size_t I = 0; I < Prog.RegInit.size() && I < R.size(); ++I)
        R[I] = Prog.RegInit[I];
    }
    AbortFired.assign(NThreads, 0);
    VCCounts.assign(NThreads, 0);

    std::lock_guard<std::mutex> L(M);
    for (ThreadSlot &S : Slots)
      S = ThreadSlot{WState::Idle, nullptr, 0};
  }

  /// Maps a runtime word to the oracle encoding (object pointers become
  /// refWord) and back.
  Word normalize(Word V) const {
    auto It = PtrToIdx.find(V);
    return It == PtrToIdx.end() ? V : refWord(It->second);
  }
  Word denormalize(Word V) const {
    if (isRefWord(V, Objects.size()))
      return Object::toWord(Objects[V - RefBase]);
    return V;
  }

  void collectOutcome(RunRecord &RR) {
    for (Object *O : Objects)
      for (uint32_t S = 0; S < O->slotCount(); ++S)
        RR.Observed.Mem.push_back(normalize(O->rawLoad(S)));
    for (const auto &R : Regs)
      RR.Observed.Regs.insert(RR.Observed.Regs.end(), R.begin(), R.end());
  }

  //===------------------------------------------------------------------===
  // Worker side.
  //===------------------------------------------------------------------===

  void workerMain(int T) {
    TlsWorker = WorkerTls{this, T};
    std::unique_lock<std::mutex> L(M);
    for (;;) {
      CV.wait(L, [&] {
        return Exiting || Slots[T].St == WState::Granted;
      });
      if (Exiting)
        break;
      L.unlock();
      std::string Err;
      try {
        runThreadProgram(T);
      } catch (const std::exception &E) {
        Err = E.what();
      } catch (...) {
        Err = "unknown exception";
      }
      L.lock();
      if (!Err.empty() && Cur && Cur->Error.empty())
        Cur->Error = "thread " + std::to_string(T) + ": " + Err;
      Slots[T].St = WState::Done;
      CV.notify_all();
    }
  }

  /// Parks the worker and hands control to the scheduler. With a non-null
  /// \p Rec the thread is blocked until the record changes. \p Record adds
  /// a Yield trace event (runtime-internal points only; step boundaries
  /// are implied by the following access event).
  void yieldHere(int T, YieldPoint P, const std::atomic<Word> *Rec,
                 Word Observed, bool Record) {
    if (Record)
      recordEvent(T, TraceEvent::Kind::Yield, P, -1, 0, 0);
    std::unique_lock<std::mutex> L(M);
    if (Exiting)
      return; // Shutdown: degrade to free-running (never in normal runs).
    ThreadSlot &S = Slots[T];
    S.St = Rec ? WState::Blocked : WState::Yielded;
    S.BlockRec = Rec;
    S.BlockObserved = Observed;
    S.Woken = false; // A fresh block re-arms the sticky wake.
    CV.notify_all();
    CV.wait(L, [&] { return Exiting || S.St == WState::Granted; });
  }

  /// Step-boundary yield: a plain preemption opportunity before every
  /// shared-memory access the program makes.
  void pause(int T) {
    yieldHere(T, YieldPoint::TxnContention, nullptr, 0, /*Record=*/false);
  }

  void recordEvent(int T, TraceEvent::Kind K, YieldPoint P, int Obj,
                   uint16_t Slot, Word Value) {
    TraceEvent E;
    E.K = K;
    E.Thread = static_cast<uint8_t>(T);
    E.Point = P;
    E.Obj = static_cast<int16_t>(Obj);
    E.Slot = Slot;
    E.Value = Value;
    VCCounts[T]++;
    E.VC = VCCounts;
    Cur->Events.push_back(std::move(E));
  }

  void recordAccess(int T, TraceEvent::Kind K, int Obj, uint32_t Slot,
                    Word NormValue) {
    recordEvent(T, K, YieldPoint::TxnContention, Obj,
                static_cast<uint16_t>(Slot), NormValue);
  }

  Word refOf(int Obj) const { return refWord(Obj); }

  /// Resolves a step's target, or null for an invalid indirect reference
  /// (the step is a no-op, matching the oracle).
  Object *resolveTarget(int T, const Step &S, int &ObjIdx) {
    if (S.Obj >= 0) {
      ObjIdx = S.Obj;
    } else {
      Word W = Regs[T][S.ObjReg]; // Registers hold normalized values.
      if (!isRefWord(W, Objects.size()))
        return nullptr;
      ObjIdx = static_cast<int>(W - RefBase);
    }
    if (S.Slot >= Prog.Objects[ObjIdx].Slots)
      return nullptr;
    return Objects[ObjIdx];
  }

  void runThreadProgram(int T) {
    for (const Segment &Seg : Prog.Threads[T]) {
      if (!Seg.IsTxn) {
        if (Seg.IsAggregated)
          execAggregatedSegment(T, Seg);
        else
          for (const Step &S : Seg.Steps)
            execNtStep(T, S);
        continue;
      }
      RegSnap[T] = Regs[T];
      if (Seg.IsSnapshot) {
        // The snapshot plane is regime-independent (always a Txn snapshot
        // region); it needs a variant with SnapshotPlane set so committing
        // writers actually publish version records.
        Txn::runSnapshot([&] { execTxnBody(T, Seg, /*Lazy=*/false); });
        recordEvent(T, TraceEvent::Kind::SnapCommit,
                    YieldPoint::TxnContention, -1, 0, 0);
        continue;
      }
      switch (R) {
      case Regime::Eager:
      case Regime::Strong:
        runEagerSegment(T, Seg);
        break;
      case Regime::Lazy:
      case Regime::LazyOrd:
        LazyTxn::run([&] { execTxnBody(T, Seg, /*Lazy=*/true); });
        break;
      case Regime::Locks:
        execLockedRegion(T, Seg);
        continue;
      }
      recordEvent(T, TraceEvent::Kind::TxnCommit, YieldPoint::TxnContention,
                  -1, 0, 0);
    }
  }

  /// Eager/Strong transactional segment, honoring the affine-gate
  /// annotations (Program.h). An owned segment mirrors
  /// AffineExec::execSingle: probe the gate, run under OwnedFastScope when
  /// the window opens, retreat to the full protocol when foreign intent
  /// holds it. A cross segment mirrors AffineExec::runCross: publish
  /// foreign intent on every listed gate (cooperatively waiting out open
  /// windows via YieldPoint::AffineGate), run the full-protocol
  /// transaction, withdraw. The intent spans the transaction's
  /// re-executions, exactly as in the executor.
  void runEagerSegment(int T, const Segment &Seg) {
    if (Seg.OwnedGate >= 0) {
      AffineGate &G = *AffineGates[Seg.OwnedGate];
      pause(T); // The gate probe is a scheduling-visible decision.
      if (G.tryEnterOwned()) {
        OwnedFastScope Scope;
        Txn::run([&] { execTxnBody(T, Seg, /*Lazy=*/false); });
        G.exitOwned();
      } else {
        Txn::run([&] { execTxnBody(T, Seg, /*Lazy=*/false); });
      }
      return;
    }
    if (!Seg.ForeignGates.empty()) {
      pause(T);
      for (int Gate : Seg.ForeignGates)
        AffineGates[Gate]->enterForeign();
      Txn::run([&] { execTxnBody(T, Seg, /*Lazy=*/false); });
      for (int Gate : Seg.ForeignGates)
        AffineGates[Gate]->exitForeign();
      return;
    }
    Txn::run([&] { execTxnBody(T, Seg, /*Lazy=*/false); });
  }

  void execTxnBody(int T, const Segment &Seg, bool Lazy) {
    // Each (re)execution starts from the registers the region began with:
    // registers model transaction-local state.
    Regs[T] = RegSnap[T];
    recordEvent(T,
                Seg.IsSnapshot ? TraceEvent::Kind::SnapBegin
                               : TraceEvent::Kind::TxnBegin,
                YieldPoint::TxnContention, -1, 0, 0);
    auto Ref = [this](int O) { return refOf(O); };
    for (const Step &S : Seg.Steps) {
      if (!guardPasses(S.G, Regs[T], Ref))
        continue;
      if (S.Kind == Step::Op::AbortOnce) {
        if (AbortFired[T])
          continue;
        AbortFired[T] = 1;
        recordEvent(T, TraceEvent::Kind::AbortOnce, YieldPoint::TxnContention,
                    -1, 0, 0);
        if (Lazy)
          LazyTxn::forThisThread().abortRestart();
        Txn::forThisThread().abortRestart();
      }
      int ObjIdx = -1;
      Object *O = resolveTarget(T, S, ObjIdx);
      if (!O)
        continue;
      pause(T);
      if (S.Kind == Step::Op::Read) {
        Word V = Lazy ? LazyTxn::forThisThread().read(O, S.Slot)
                      : Txn::forThisThread().read(O, S.Slot);
        V = normalize(V);
        Regs[T][S.Dst] = V;
        recordAccess(T, TraceEvent::Kind::Read, ObjIdx, S.Slot, V);
      } else {
        Word NV = evalOperand(S.Src, Regs[T], Ref);
        Word V = denormalize(NV);
        if (Lazy)
          LazyTxn::forThisThread().write(O, S.Slot, V);
        else
          Txn::forThisThread().write(O, S.Slot, V);
        recordAccess(T, TraceEvent::Kind::Write, ObjIdx, S.Slot, NV);
      }
    }
  }

  void execLockedRegion(int T, const Segment &Seg) {
    // A cooperative lock built on a dedicated object's transaction record:
    // a std::mutex would block the OS thread outside the scheduler's
    // control and deadlock the handoff protocol.
    std::atomic<Word> &Rec = LockObj->txRecord();
    pause(T);
    while (!TxRecord::acquireAnon(Rec)) {
      Word W = Rec.load(std::memory_order_acquire);
      yieldHere(T, YieldPoint::NtWriteBarrier, &Rec, W, /*Record=*/false);
    }
    recordEvent(T, TraceEvent::Kind::TxnBegin, YieldPoint::TxnContention, -1,
                0, 0);
    auto Ref = [this](int O) { return refOf(O); };
    for (const Step &S : Seg.Steps) {
      if (!guardPasses(S.G, Regs[T], Ref))
        continue;
      if (S.Kind == Step::Op::AbortOnce)
        continue; // Lock regions cannot abort (stm/Litmus semantics).
      int ObjIdx = -1;
      Object *O = resolveTarget(T, S, ObjIdx);
      if (!O)
        continue;
      pause(T);
      if (S.Kind == Step::Op::Read) {
        Word V = normalize(O->rawLoad(S.Slot, std::memory_order_acquire));
        Regs[T][S.Dst] = V;
        recordAccess(T, TraceEvent::Kind::Read, ObjIdx, S.Slot, V);
      } else {
        Word NV = evalOperand(S.Src, Regs[T], Ref);
        O->rawStore(S.Slot, denormalize(NV), std::memory_order_release);
        recordAccess(T, TraceEvent::Kind::Write, ObjIdx, S.Slot, NV);
      }
    }
    recordEvent(T, TraceEvent::Kind::TxnCommit, YieldPoint::TxnContention,
                -1, 0, 0);
    TxRecord::releaseAnon(Rec);
  }

  /// §6 barrier aggregation: one acquire (write) or one validation (read)
  /// covers every step of the segment, which must address a single object
  /// directly. Only the Strong regime has aggregated barriers; the other
  /// regimes run the usual per-step path — the oracle executes every
  /// segment atomically either way, so aggregation only narrows which
  /// interleavings the *implementation* can produce.
  void execAggregatedSegment(int T, const Segment &Seg) {
    if (R != Regime::Strong) {
      for (const Step &S : Seg.Steps)
        execNtStep(T, S);
      return;
    }
    auto Ref = [this](int O) { return refOf(O); };
    int ObjIdx = Seg.Steps.front().Obj;
    assert(ObjIdx >= 0 && "aggregated steps must address an object directly");
    Object *O = Objects[ObjIdx];
    bool HasWrite = false;
    for (const Step &S : Seg.Steps) {
      assert(S.Obj == ObjIdx && "aggregated scope spans a single object");
      assert(S.Kind != Step::Op::AbortOnce && "no aborts outside regions");
      HasWrite |= S.Kind == Step::Op::Write;
    }
    pause(T); // Preemption opportunity before the acquire/first load.
    if (HasWrite) {
      AggregatedWriter W(O);
      // pause() inside the scope exposes the whole hold window to the
      // scheduler: other threads run against the Exclusive-anon record.
      for (const Step &S : Seg.Steps) {
        if (!guardPasses(S.G, Regs[T], Ref) ||
            S.Slot >= Prog.Objects[ObjIdx].Slots)
          continue;
        pause(T);
        if (S.Kind == Step::Op::Read) {
          Word V = normalize(W.load(S.Slot));
          Regs[T][S.Dst] = V;
          recordAccess(T, TraceEvent::Kind::Read, ObjIdx, S.Slot, V);
        } else {
          Word NV = evalOperand(S.Src, Regs[T], Ref);
          W.store(S.Slot, denormalize(NV));
          recordAccess(T, TraceEvent::Kind::Write, ObjIdx, S.Slot, NV);
        }
      }
      return;
    }
    // Read-only scope. The body may re-execute until the record is stable
    // across it, so it mutates only local copies (idempotent as required);
    // registers and the trace are committed once, after the validated run.
    std::vector<Word> LocalRegs;
    std::vector<std::pair<const Step *, Word>> Reads;
    aggregatedRead(O, [&](const Object *AO) {
      LocalRegs = Regs[T];
      Reads.clear();
      for (const Step &S : Seg.Steps) {
        if (!guardPasses(S.G, LocalRegs, Ref) ||
            S.Slot >= Prog.Objects[ObjIdx].Slots)
          continue;
        pause(T); // Expose the multi-load window between the two fences.
        Word V = normalize(AO->rawLoad(S.Slot, std::memory_order_acquire));
        LocalRegs[S.Dst] = V;
        Reads.push_back({&S, V});
      }
      return 0;
    });
    Regs[T] = LocalRegs;
    for (const auto &RV : Reads)
      recordAccess(T, TraceEvent::Kind::Read, ObjIdx, RV.first->Slot,
                   RV.second);
  }

  void execNtStep(int T, const Step &S) {
    auto Ref = [this](int O) { return refOf(O); };
    if (!guardPasses(S.G, Regs[T], Ref))
      return;
    if (S.Kind == Step::Op::AbortOnce)
      return; // Aborts are meaningful only inside atomic regions.
    int ObjIdx = -1;
    Object *O = resolveTarget(T, S, ObjIdx);
    if (!O)
      return;
    pause(T);
    if (S.Kind == Step::Op::Read) {
      Word V;
      switch (R) {
      case Regime::Strong:
        V = ntRead(O, S.Slot);
        break;
      case Regime::LazyOrd:
        V = ntReadOrdering(O, S.Slot); // §3.3: ordering, not isolation.
        break;
      default:
        V = O->rawLoad(S.Slot, std::memory_order_acquire);
        break;
      }
      V = normalize(V);
      Regs[T][S.Dst] = V;
      recordAccess(T, TraceEvent::Kind::Read, ObjIdx, S.Slot, V);
    } else {
      Word NV = evalOperand(S.Src, Regs[T], Ref);
      Word V = denormalize(NV);
      if (R == Regime::Strong)
        ntWrite(O, S.Slot, V);
      else
        O->rawStore(S.Slot, V, std::memory_order_release);
      recordAccess(T, TraceEvent::Kind::Write, ObjIdx, S.Slot, NV);
    }
  }

  //===------------------------------------------------------------------===
  // Members.
  //===------------------------------------------------------------------===

  const Program &Prog;
  Regime R;
  size_t NThreads;
  Config Saved;

  std::deque<rt::TypeDescriptor> Types;
  std::unique_ptr<rt::TypeDescriptor> LockType;
  std::unique_ptr<rt::Heap> HeapPtr;
  std::vector<Object *> Objects;
  std::unordered_map<Word, int> PtrToIdx;
  Object *LockObj = nullptr;
  /// Affine-gate modeling (Program.h): one gate per annotation index,
  /// recreated per run by setupRun().
  size_t NumGates = 0;
  std::vector<std::unique_ptr<AffineGate>> AffineGates;

  std::vector<std::vector<Word>> Regs, RegSnap;
  std::vector<uint8_t> AbortFired;
  std::vector<uint32_t> VCCounts;
  RunRecord *Cur = nullptr;

  std::mutex M;
  std::condition_variable CV;
  std::vector<ThreadSlot> Slots;
  bool Exiting = false;
  std::vector<std::thread> Workers;
};

void yieldTrampoline(YieldPoint P, const std::atomic<Word> *Rec,
                     Word Observed) {
  if (TlsWorker.C)
    TlsWorker.C->yieldHere(TlsWorker.Thread, P, Rec, Observed,
                           /*Record=*/true);
}

bool isPreempt(const Coop::Decision &D, uint8_t Choice) {
  return D.Prev >= 0 && D.PrevEnabled &&
         Choice != static_cast<uint8_t>(D.Prev);
}

const Regime AllRegimes[] = {Regime::Eager, Regime::Lazy, Regime::Locks,
                             Regime::Strong, Regime::LazyOrd};

} // namespace

//===----------------------------------------------------------------------===
// Tokens.
//===----------------------------------------------------------------------===

std::string satm::check::formatToken(const ScheduleToken &T) {
  std::ostringstream OS;
  OS << "sx1;" << litmus::regimeName(T.R) << ";v" << T.Variant << ";";
  for (size_t I = 0; I < T.Choices.size(); ++I)
    OS << (I ? "," : "") << int(T.Choices[I]);
  return OS.str();
}

bool satm::check::parseToken(const std::string &S, ScheduleToken &Out,
                             std::string *Error) {
  auto Fail = [&](const std::string &Why) {
    if (Error)
      *Error = "bad schedule token: " + Why;
    return false;
  };
  std::vector<std::string> Parts;
  size_t Pos = 0;
  while (Parts.size() < 4) {
    size_t Semi = S.find(';', Pos);
    if (Semi == std::string::npos) {
      Parts.push_back(S.substr(Pos));
      break;
    }
    Parts.push_back(S.substr(Pos, Semi - Pos));
    Pos = Semi + 1;
  }
  if (Parts.size() != 4)
    return Fail("expected 4 ';'-separated fields");
  if (Parts[0] != "sx1")
    return Fail("unknown version '" + Parts[0] + "'");
  bool RegimeFound = false;
  for (Regime R : AllRegimes) {
    if (Parts[1] == litmus::regimeName(R)) {
      Out.R = R;
      RegimeFound = true;
      break;
    }
  }
  if (!RegimeFound)
    return Fail("unknown regime '" + Parts[1] + "'");
  if (Parts[2].size() < 2 || Parts[2][0] != 'v')
    return Fail("bad variant field '" + Parts[2] + "'");
  Out.Variant = 0;
  for (size_t I = 1; I < Parts[2].size(); ++I) {
    if (!isdigit(static_cast<unsigned char>(Parts[2][I])))
      return Fail("bad variant field '" + Parts[2] + "'");
    Out.Variant = Out.Variant * 10 + (Parts[2][I] - '0');
  }
  Out.Choices.clear();
  const std::string &C = Parts[3];
  size_t I = 0;
  while (I < C.size()) {
    size_t J = I;
    unsigned V = 0;
    while (J < C.size() && isdigit(static_cast<unsigned char>(C[J]))) {
      V = V * 10 + (C[J] - '0');
      J++;
    }
    if (J == I || V > 255)
      return Fail("bad choice list");
    Out.Choices.push_back(static_cast<uint8_t>(V));
    if (J < C.size()) {
      if (C[J] != ',')
        return Fail("bad choice list");
      J++;
    }
    I = J;
  }
  return true;
}

//===----------------------------------------------------------------------===
// Trace formatting.
//===----------------------------------------------------------------------===

namespace {

const char *yieldPointName(YieldPoint P) {
  switch (P) {
  case YieldPoint::TxnContention:
    return "txn-contention";
  case YieldPoint::TxnRollback:
    return "txn-rollback";
  case YieldPoint::NtReadBarrier:
    return "nt-read-barrier";
  case YieldPoint::NtWriteBarrier:
    return "nt-write-barrier";
  case YieldPoint::LazyCommitPoint:
    return "lazy-commit-point";
  case YieldPoint::LazyWritebackEntry:
    return "lazy-writeback-entry";
  case YieldPoint::LazyCommitAcquire:
    return "lazy-commit-acquire";
  case YieldPoint::SerialGate:
    return "serial-gate";
  case YieldPoint::SnapshotPin:
    return "snapshot-pin";
  case YieldPoint::SnapshotRead:
    return "snapshot-read";
  case YieldPoint::SnapshotPublish:
    return "snapshot-publish";
  case YieldPoint::QuiesceWait:
    return "quiesce-wait";
  case YieldPoint::AffineGate:
    return "affine-gate";
  }
  return "?";
}

void formatValue(std::ostringstream &OS, const Program &P, Word V) {
  if (isRefWord(V, P.Objects.size()))
    OS << '&' << P.Objects[V - RefBase].Name;
  else
    OS << V;
}

} // namespace

std::string satm::check::formatEvent(const Program &P, const TraceEvent &E) {
  std::ostringstream OS;
  OS << 't' << int(E.Thread) << ' ';
  switch (E.K) {
  case TraceEvent::Kind::TxnBegin:
    OS << "txn-begin";
    break;
  case TraceEvent::Kind::TxnCommit:
    OS << "txn-commit";
    break;
  case TraceEvent::Kind::SnapBegin:
    OS << "snap-begin";
    break;
  case TraceEvent::Kind::SnapCommit:
    OS << "snap-commit";
    break;
  case TraceEvent::Kind::AbortOnce:
    OS << "abort";
    break;
  case TraceEvent::Kind::Yield:
    OS << "yield(" << yieldPointName(E.Point) << ')';
    break;
  case TraceEvent::Kind::Read:
  case TraceEvent::Kind::Write:
    OS << (E.K == TraceEvent::Kind::Read ? "read  " : "write ")
       << P.Objects[E.Obj].Name << '.' << E.Slot
       << (E.K == TraceEvent::Kind::Read ? " -> " : " <- ");
    formatValue(OS, P, E.Value);
    break;
  }
  OS << "  vc[";
  for (size_t I = 0; I < E.VC.size(); ++I)
    OS << (I ? "," : "") << E.VC[I];
  OS << ']';
  return OS.str();
}

std::string satm::check::formatTrace(const Program &P, const Trace &T) {
  std::ostringstream OS;
  for (const TraceEvent &E : T)
    OS << "  " << formatEvent(P, E) << '\n';
  return OS.str();
}

//===----------------------------------------------------------------------===
// explore() and replay().
//===----------------------------------------------------------------------===

namespace {

struct Frame {
  Coop::Decision D;
  uint32_t PreBefore; ///< Preemptions spent before this decision.
  uint32_t CurPre;    ///< Preemptions through this decision as chosen.
  size_t NextAlt;     ///< Next candidate index to try on backtrack.
  uint8_t CurChosen;
};

void recordViolation(ExploreResult &Res, const std::string &Detail, Regime R,
                     size_t Variant, const Coop::RunRecord &RR) {
  if (Res.Violations.size() >= 8)
    return; // Count is what matters past the first few; keep memory flat.
  Violation V;
  ScheduleToken Tok;
  Tok.R = R;
  Tok.Variant = Variant;
  Tok.Choices = RR.Choices;
  V.Token = formatToken(Tok);
  V.Events = RR.Events;
  V.Observed = RR.Observed;
  V.Detail = Detail;
  Res.Violations.push_back(std::move(V));
}

} // namespace

ExploreResult satm::check::explore(const Program &P, Regime R,
                                   const ExploreOptions &Opts) {
  if (P.Threads.empty() || P.Threads.size() > 8)
    throw std::invalid_argument("explore: 1..8 threads required");
  // The judging oracle: serializability by default, snapshot isolation for
  // snapshot-plane programs (ExploreOptions::SnapshotIsolation).
  std::unique_ptr<Oracle> SerO;
  std::unique_ptr<SiOracle> SiO;
  if (Opts.SnapshotIsolation)
    SiO = std::make_unique<SiOracle>(P);
  else
    SerO = std::make_unique<Oracle>(P);
  auto IsLegal = [&](const Outcome &O) {
    return SiO ? SiO->isLegal(O) : SerO->isLegal(O);
  };
  auto Explain = [&](const Outcome &O) {
    return SiO ? SiO->explain(O) : SerO->explain(O);
  };
  ExploreResult Res;
  Res.Serializations =
      SiO ? SiO->serializationCount() : SerO->serializationCount();
  Res.LegalOutcomes = SiO ? SiO->outcomes().size() : SerO->outcomes().size();

  bool AllExhausted = true;
  for (size_t Vi = 0; Vi < P.Variants.size(); ++Vi) {
    Coop C(P, R, P.Variants[Vi]);

    std::vector<Frame> Stack;
    std::vector<uint8_t> Prefix;
    bool VariantExhausted = false;
    for (;;) {
      if (Res.Schedules >= Opts.MaxSchedules)
        break;
      Coop::RunRecord RR =
          C.runOnce(Prefix, nullptr, Opts.MaxGrantsPerRun);
      Res.Schedules++;
      if (!RR.Error.empty())
        throw std::runtime_error("explore(" + P.Name + "): " + RR.Error);
      if (!IsLegal(RR.Observed)) {
        recordViolation(Res, Explain(RR.Observed), R, Vi, RR);
        if (Opts.StopAtFirstViolation)
          return Res;
      }

      // Extend the frame stack with the decisions past the forced prefix
      // (their default choices cost no preemptions by construction).
      for (size_t I = Stack.size(); I < RR.Decisions.size(); ++I) {
        Frame F;
        F.D = RR.Decisions[I];
        F.PreBefore = Stack.empty() ? 0 : Stack.back().CurPre;
        F.CurChosen = F.D.Chosen;
        F.CurPre = F.PreBefore + (isPreempt(F.D, F.CurChosen) ? 1 : 0);
        F.NextAlt = 1; // Candidate 0 is what this run just chose.
        Stack.push_back(std::move(F));
      }

      // Backtrack to the deepest decision with an untried in-budget
      // alternative.
      bool Advanced = false;
      while (!Stack.empty()) {
        Frame &F = Stack.back();
        while (F.NextAlt < F.D.Cands.size()) {
          uint8_t Alt = F.D.Cands[F.NextAlt++];
          uint32_t NP = F.PreBefore + (isPreempt(F.D, Alt) ? 1 : 0);
          if (NP <= Opts.PreemptionBound) {
            F.CurChosen = Alt;
            F.CurPre = NP;
            Advanced = true;
            break;
          }
        }
        if (Advanced)
          break;
        Stack.pop_back();
      }
      if (!Advanced) {
        VariantExhausted = true;
        break;
      }
      Prefix.clear();
      for (const Frame &F : Stack)
        Prefix.push_back(F.CurChosen);
    }
    AllExhausted = AllExhausted && VariantExhausted;

    // Random walks: unbounded preemptions, seeded, beyond the bound.
    if (Opts.RandomWalks) {
      Rng Rand(Opts.Seed * 1000003ull + Vi);
      for (uint64_t I = 0; I < Opts.RandomWalks; ++I) {
        Coop::RunRecord RR = C.runOnce({}, &Rand, Opts.MaxGrantsPerRun);
        Res.RandomSchedules++;
        if (!RR.Error.empty())
          throw std::runtime_error("explore(" + P.Name + "): " + RR.Error);
        if (!IsLegal(RR.Observed)) {
          recordViolation(Res, Explain(RR.Observed), R, Vi, RR);
          if (Opts.StopAtFirstViolation)
            return Res;
        }
      }
    }
  }
  Res.Exhausted = AllExhausted;
  return Res;
}

Trace satm::check::replay(const Program &P, Regime R,
                          const std::string &Token, std::string *Error) {
  ScheduleToken Tok;
  if (!parseToken(Token, Tok, Error))
    return {};
  if (Tok.R != R) {
    if (Error)
      *Error = std::string("token regime '") + litmus::regimeName(Tok.R) +
               "' does not match requested '" + litmus::regimeName(R) + "'";
    return {};
  }
  if (Tok.Variant >= P.Variants.size()) {
    if (Error)
      *Error = "token variant index out of range";
    return {};
  }
  Coop C(P, R, P.Variants[Tok.Variant]);
  Coop::RunRecord RR = C.runOnce(Tok.Choices, nullptr, 200000);
  if (!RR.Error.empty()) {
    if (Error)
      *Error = RR.Error;
    return {};
  }
  return RR.Events;
}
