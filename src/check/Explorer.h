//===- check/Explorer.h - Systematic interleaving explorer -----*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SchedExplorer: runs a check::Program against the real STM runtime
/// under a cooperative scheduler that owns every scheduling decision, and
/// enumerates schedules systematically — depth-first with a preemption
/// bound (CHESS-style), optionally followed by seeded random walks beyond
/// the bound. Each execution's outcome (final heap state plus every value
/// the program observed, normalized) is checked against the Oracle's
/// serializability set; a mismatch is a strong-atomicity violation and is
/// reported with a vector-clock-stamped trace and a replay token that
/// deterministically reproduces the identical execution.
///
/// The scheduler reaches inside the runtime through Config::Yield (the
/// schedYield points in Txn/LazyTxn/Barriers), so commit-time write-back
/// windows, undo rollback windows, and barrier spins are all genuine
/// scheduling points — the anomalies of Figure 6 are found by search, not
/// staged by hand-placed gates as in stm/Litmus.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_CHECK_EXPLORER_H
#define SATM_CHECK_EXPLORER_H

#include "check/Oracle.h"
#include "check/Program.h"
#include "stm/Config.h"
#include "stm/Litmus.h"

#include <string>
#include <vector>

namespace satm {
namespace check {

struct ExploreOptions {
  /// Maximum number of *preemptions* per schedule in the exhaustive phase:
  /// scheduling decisions that switch away from a thread that could have
  /// continued. Forced switches (the running thread blocked or finished)
  /// are free. Bound 2 suffices for every reachable Figure 6 cell; see
  /// DESIGN.md ("Schedule exploration") for why it is the default.
  uint32_t PreemptionBound = 2;

  /// Cap on exhaustively enumerated schedules (safety valve; Exhausted is
  /// false if the cap is hit).
  uint64_t MaxSchedules = 200000;

  /// Seeded random walks with unbounded preemptions, run after (or instead
  /// of) the exhaustive phase.
  uint64_t RandomWalks = 0;
  uint64_t Seed = 1;

  /// Stop at the first violation instead of collecting all of them.
  bool StopAtFirstViolation = true;

  /// Judge outcomes against the snapshot-isolation oracle (SiOracle)
  /// instead of the serializability Oracle. Use for programs with snap()
  /// segments: a clean exhausted search proves the snapshot plane is SI,
  /// and the same program explored without this flag exhibits exactly the
  /// SI-but-not-serializable anomalies (write skew).
  bool SnapshotIsolation = false;

  /// Scheduling grants per execution before the run is declared livelocked
  /// and the scheduler switches to the strict-priority rescue policy that
  /// provably drains mutual abort-and-retry cycles (see Explorer.cpp). Far
  /// above anything the Figure 6 programs need; lower it when exploring
  /// programs with several mutually conflicting transactions.
  uint32_t MaxGrantsPerRun = 10000;
};

/// One event of an execution trace. Events are totally ordered (the
/// cooperative scheduler runs one thread at a time); VC additionally stamps
/// each event with the per-thread event counts at the time it happened, so
/// cross-thread ordering is explicit in violation reports.
struct TraceEvent {
  enum class Kind : uint8_t {
    TxnBegin,   ///< A region body (re)starts executing.
    TxnCommit,  ///< A region completed.
    Read,       ///< Value = the (normalized) value read.
    Write,      ///< Value = the (normalized) value written.
    AbortOnce,  ///< The forced-abort step fired.
    Yield,      ///< A runtime-internal yield point; Point says which.
    SnapBegin,  ///< A snapshot region body (re)starts executing.
    SnapCommit, ///< A snapshot region completed.
  };
  Kind K = Kind::Read;
  uint8_t Thread = 0;
  stm::YieldPoint Point = stm::YieldPoint::TxnContention; ///< Yield only.
  int16_t Obj = -1; ///< Object index, -1 when not applicable.
  uint16_t Slot = 0;
  Word Value = 0;
  std::vector<uint32_t> VC; ///< Per-thread event counts, this event included.

  bool operator==(const TraceEvent &E) const = default;
};

using Trace = std::vector<TraceEvent>;

std::string formatEvent(const Program &P, const TraceEvent &E);
std::string formatTrace(const Program &P, const Trace &T);

/// A discovered strong-atomicity violation.
struct Violation {
  std::string Token; ///< Replay token reproducing this exact execution.
  Trace Events;
  Outcome Observed;
  std::string Detail; ///< Oracle explanation (observed vs legal outcomes).
};

struct ExploreResult {
  uint64_t Schedules = 0;       ///< Executions run in the exhaustive phase.
  uint64_t RandomSchedules = 0; ///< Executions run as random walks.
  uint64_t Serializations = 0;  ///< Oracle reference interleavings.
  uint64_t LegalOutcomes = 0;   ///< Distinct serializable outcomes.
  /// True iff the bounded schedule space was fully enumerated for every
  /// config variant (never true if a violation stopped the search early or
  /// MaxSchedules was hit).
  bool Exhausted = false;
  std::vector<Violation> Violations;

  bool found() const { return !Violations.empty(); }
};

/// Explores \p P under regime \p R. Spawns |threads| worker threads per
/// config variant; single-threaded otherwise (the scheduler and at most one
/// worker run at any instant).
ExploreResult explore(const Program &P, stm::litmus::Regime R,
                      const ExploreOptions &Opts = {});

/// Re-runs the execution \p Token describes (as produced in
/// Violation::Token) and returns its trace. The token pins the config
/// variant and the full schedule, so the trace is deterministic. On a
/// malformed or mismatched token returns an empty trace and, if \p Error is
/// non-null, stores a description.
Trace replay(const Program &P, stm::litmus::Regime R, const std::string &Token,
             std::string *Error = nullptr);

/// Token introspection, exposed for tests.
struct ScheduleToken {
  stm::litmus::Regime R = stm::litmus::Regime::Eager;
  size_t Variant = 0;
  std::vector<uint8_t> Choices; ///< Thread granted at each decision point.
};

std::string formatToken(const ScheduleToken &T);
bool parseToken(const std::string &S, ScheduleToken &Out, std::string *Error);

} // namespace check
} // namespace satm

#endif // SATM_CHECK_EXPLORER_H
