//===- check/Oracle.h - Serializability reference oracle -------*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The strong-atomicity reference semantics for explorer programs: a
/// brute-force sequential executor that enumerates every interleaving of
/// the program's scheduling units (whole atomic regions and individual
/// non-transactional steps, each executed indivisibly and in program
/// order), collecting the set of legal *outcomes* — final heap state plus
/// final per-thread registers. Because every read deposits its value in a
/// register that the outcome retains, a legal outcome certifies both the
/// final state and every intermediate observation.
///
/// An execution of the real runtime is serializable (strongly atomic) iff
/// its normalized outcome is a member of this set. AbortOnce steps are
/// no-ops here: in the reference semantics a region that aborts simply
/// re-executes and commits, contributing nothing observable.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_CHECK_ORACLE_H
#define SATM_CHECK_ORACLE_H

#include "check/Program.h"

#include <string>
#include <vector>

namespace satm {
namespace check {

/// One observable result of a program: every object slot (in object/slot
/// order) followed by every thread's registers (in thread/register order).
/// References appear as refWord() values.
struct Outcome {
  std::vector<Word> Mem;
  std::vector<Word> Regs;

  bool operator==(const Outcome &O) const = default;
  bool operator<(const Outcome &O) const {
    if (Mem != O.Mem)
      return Mem < O.Mem;
    return Regs < O.Regs;
  }
};

/// Enumerates the legal outcomes of a program once; answers membership
/// queries for observed executions.
class Oracle {
public:
  explicit Oracle(const Program &P);

  bool isLegal(const Outcome &O) const;

  /// All legal outcomes, sorted and deduplicated.
  const std::vector<Outcome> &outcomes() const { return Legal; }

  /// Number of distinct unit interleavings enumerated (the reference
  /// state-space size, before outcome deduplication).
  uint64_t serializationCount() const { return Serializations; }

  /// Renders \p Observed with the program's object/slot and register
  /// labels, followed by the legal-outcome set (capped), for violation
  /// reports.
  std::string explain(const Outcome &Observed) const;

  /// Renders one outcome on a single line.
  std::string format(const Outcome &O) const;

private:
  const Program &Prog;
  std::vector<Outcome> Legal;
  uint64_t Serializations = 0;
};

/// The snapshot-isolation reference semantics (DESIGN.md §10): like Oracle,
/// a sequential executor enumerating every commit-order interleaving of the
/// program's units — but a snap() segment additionally branches over its
/// *snapshot point* k, any commit-history position from the thread's floor
/// up to the present. Its reads come from the historical state at k (plus
/// its own earlier in-segment writes, read-your-writes); its writes apply
/// at the current position, and the branch is discarded if any object it
/// writes was also written by a commit in (k, present] — first-committer-
/// wins at object granularity, exactly the runtime's check.
///
/// The floor enforces per-thread snapshot monotonicity: a thread's snapshot
/// point never precedes its own previous snapshot point or its own latest
/// commit (the runtime pins the stable epoch, which is monotonic and
/// already covers the thread's own finished publications). Because every
/// snapshot reads a prefix of one total commit order, the admitted
/// anomalies are exactly SI's: write skew is a member of this set, while
/// long-fork and read-your-writes violations are not.
class SiOracle {
public:
  explicit SiOracle(const Program &P);

  bool isLegal(const Outcome &O) const;

  /// All SI-admissible outcomes, sorted and deduplicated. A superset of the
  /// serializability Oracle's set for the same program.
  const std::vector<Outcome> &outcomes() const { return Legal; }

  /// Distinct (interleaving, snapshot-point) executions enumerated.
  uint64_t serializationCount() const { return Serializations; }

  std::string explain(const Outcome &Observed) const;
  std::string format(const Outcome &O) const;

private:
  const Program &Prog;
  std::vector<Outcome> Legal;
  uint64_t Serializations = 0;
};

} // namespace check
} // namespace satm

#endif // SATM_CHECK_ORACLE_H
