//===- check/KvModel.h - 2-shard SATM-KV model for the explorer -*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature model of the SATM-KV store (src/kv/Store.h) as explorer
/// programs: two shards of capacity two, laid out with the *real* store's
/// hashKey/probeStart so each model key occupies exactly the index slot its
/// production counterpart would. The programs pit the store's two access
/// planes against each other — a non-transactional GET/PUT probing the
/// index with plain (Strong regime: barrier) reads while a transaction
/// commits a multi-key transfer, an insert, or a multi-get around it — and
/// the explorer's serializability oracle decides whether any interleaving
/// lets the non-transactional plane observe a torn store state.
///
/// Under Regime::Strong (isolation barriers on the nt steps) every program
/// must explore clean; under Regime::Eager (raw nt accesses, the weak
/// regime) each one has a reachable violation, which is the evidence that
/// the barriers — not luck — make the data structure strongly atomic.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_CHECK_KVMODEL_H
#define SATM_CHECK_KVMODEL_H

#include "check/Program.h"

namespace satm {
namespace check {

/// Where the model's keys land in a 2-shard, capacity-2 store, computed
/// with kv::hashKey / kv::Store::probeStart. KeyA and KeyB live in shards
/// 0 and 1 at their natural probe slots; KeyC hashes to shard 0's empty
/// slot (the insert target).
struct KvModelLayout {
  Word KeyA, KeyB, KeyC;
  uint32_t SlotA, SlotB, SlotC;
  /// Program object indices.
  enum : int { Keys0 = 0, Vals0, Keys1, Vals1, ValA, ValB, ValC, NumObjects };
};

/// Deterministically derives the layout from the store's hash.
KvModelLayout kvModelLayout();

/// Cross-shard transactional transfer (A -= 1, B += 1) racing a
/// non-transactional GET(A); GET(B) — the reader must never observe the
/// transfer half-applied.
Program kvTransferVsGet();

/// Transactional insert of KeyC (value init, then index entry, then value
/// link — the store's write order) racing a non-transactional GET(C) probe.
/// With \p AbortOnce the insert rolls back once first, exercising the undo
/// window: the probe must never see the key appear and vanish.
Program kvInsertVsGet(bool AbortOnce);

/// Non-transactional PUT(A)=7 then PUT(B)=9 racing a transactional
/// multi-get snapshot of {A, B}: the snapshot may see neither, the first,
/// or both writes — but never B's without A's.
Program kvPutVsMultiGet();

/// Cross-shard transactional transfer (A -= 1, B += 1) racing the store's
/// snapshotMultiGet({A, B}) (DESIGN.md §10): one snap() segment probing
/// both shards. Explored under a SnapshotPlane variant against the SI
/// oracle, the snapshot must always observe a conserved sum — never the
/// transfer half-applied.
Program kvTransferVsSnapshotMultiGet();

/// All model programs, for exhaustive sweeps.
std::vector<Program> kvModelPrograms();

} // namespace check
} // namespace satm

#endif // SATM_CHECK_KVMODEL_H
