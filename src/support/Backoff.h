//===- support/Backoff.h - Bounded exponential spin backoff ----*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounded exponential backoff used by the contention manager and by the
/// non-transactional isolation barriers when they hit a conflict
/// (paper §3.2: "The conflict manager backs off and returns so that the
/// barriers retry").
///
//===----------------------------------------------------------------------===//

#ifndef SATM_SUPPORT_BACKOFF_H
#define SATM_SUPPORT_BACKOFF_H

#include <cstdint>
#include <thread>

namespace satm {

/// Exponential backoff: spin for short waits, yield once the wait grows.
class Backoff {
public:
  /// Performs one backoff step and doubles the next wait, up to a cap.
  void pause() {
    if (Spins <= SpinCap) {
      for (uint32_t I = 0; I < Spins; ++I)
        cpuRelax();
    } else {
      std::this_thread::yield();
    }
    if (Spins < YieldCap)
      Spins <<= 1;
    ++Calls;
  }

  /// Resets the backoff to its initial (shortest) wait.
  void reset() {
    Spins = InitialSpins;
    Calls = 0;
  }

  /// Number of pause() calls so far in this escalation, as a rough
  /// contention signal for callers that want to abort instead of waiting.
  /// Counts calls, not the current wait length: the internal wait doubles
  /// and saturates at YieldCap, which would freeze this signal right when
  /// contention is worst.
  uint32_t escalation() const { return Calls; }

private:
  static void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
  }

  static constexpr uint32_t InitialSpins = 4;
  static constexpr uint32_t SpinCap = 1u << 10;
  static constexpr uint32_t YieldCap = 1u << 16;
  uint32_t Spins = InitialSpins;
  uint32_t Calls = 0;
};

} // namespace satm

#endif // SATM_SUPPORT_BACKOFF_H
