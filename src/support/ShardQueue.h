//===- support/ShardQueue.h - Bounded MPSC request queue -------*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-shard mailbox of the shard-affine executor (DESIGN.md §11): a
/// bounded multi-producer single-consumer ring in the style of Vyukov's
/// array queue. Producers are client workers hopping an operation to the
/// shard's owner; the single consumer is the owning worker draining its
/// shards between locally generated operations.
///
/// Each cell carries a sequence word. A producer claims a cell by CAS on
/// the tail, writes the value, then publishes by storing the cell's claim
/// index + 1; the consumer knows a cell is ready when its sequence equals
/// head + 1. This keeps the hot path to one uncontended CAS per enqueue
/// and plain loads/stores per dequeue — no locks, and producers never
/// block (a full queue reports false so the caller can drain or fall back
/// to the symmetric protocol).
///
/// Depth introspection (depth / maxDepth) feeds the kv_service JSON so a
/// t4→t8 scaling regression is attributable to queueing rather than to
/// the STM layer.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_SUPPORT_SHARDQUEUE_H
#define SATM_SUPPORT_SHARDQUEUE_H

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace satm {

/// Bounded MPSC ring of \p T (must be trivially copyable; in practice a
/// request pointer). Capacity is 2^SizePow2 entries.
template <typename T, unsigned SizePow2 = 10> class ShardQueue {
public:
  static constexpr size_t Capacity = size_t(1) << SizePow2;

  ShardQueue() {
    for (size_t I = 0; I < Capacity; ++I)
      Cells[I].Seq.store(I, std::memory_order_relaxed);
  }

  ShardQueue(const ShardQueue &) = delete;
  ShardQueue &operator=(const ShardQueue &) = delete;

  /// Multi-producer enqueue. \returns false when the queue is full (the
  /// value is not enqueued); never blocks.
  bool tryPush(T V) {
    uint64_t Pos = Tail.load(std::memory_order_relaxed);
    for (;;) {
      Cell &C = Cells[Pos & Mask];
      uint64_t Seq = C.Seq.load(std::memory_order_acquire);
      int64_t Dif = int64_t(Seq) - int64_t(Pos);
      if (Dif == 0) {
        if (Tail.compare_exchange_weak(Pos, Pos + 1,
                                       std::memory_order_relaxed))
          break;
        // CAS failure reloaded Pos; retry on the new claim point.
      } else if (Dif < 0) {
        return false; // The cell is still occupied: full.
      } else {
        Pos = Tail.load(std::memory_order_relaxed);
      }
    }
    Cell &C = Cells[Pos & Mask];
    C.Value = V;
    C.Seq.store(Pos + 1, std::memory_order_release);
    // Depth metric: approximate (Head may advance concurrently), which is
    // fine for a high-water mark.
    uint64_t D = Pos + 1 - Head.load(std::memory_order_relaxed);
    uint64_t M = MaxDepth.load(std::memory_order_relaxed);
    while (D > M &&
           !MaxDepth.compare_exchange_weak(M, D, std::memory_order_relaxed))
      ;
    return true;
  }

  /// Single-consumer dequeue. \returns false when empty.
  bool tryPop(T &Out) {
    uint64_t Pos = Head.load(std::memory_order_relaxed);
    Cell &C = Cells[Pos & Mask];
    uint64_t Seq = C.Seq.load(std::memory_order_acquire);
    if (int64_t(Seq) - int64_t(Pos + 1) < 0)
      return false; // Producer has not published this cell yet.
    Out = C.Value;
    Head.store(Pos + 1, std::memory_order_relaxed);
    // Recycle the cell for the producer one lap ahead.
    C.Seq.store(Pos + Capacity, std::memory_order_release);
    return true;
  }

  /// Published-but-undrained entry count (approximate under concurrency).
  uint64_t depth() const {
    uint64_t T0 = Tail.load(std::memory_order_acquire);
    uint64_t H = Head.load(std::memory_order_acquire);
    return T0 >= H ? T0 - H : 0;
  }

  /// High-water mark of depth() observed at enqueue time.
  uint64_t maxDepth() const {
    return MaxDepth.load(std::memory_order_relaxed);
  }

private:
  static constexpr uint64_t Mask = Capacity - 1;

  struct Cell {
    std::atomic<uint64_t> Seq;
    T Value;
  };

  Cell Cells[Capacity];
  /// Producer and consumer cursors on separate lines: every enqueue CASes
  /// Tail while the owner bumps Head per dequeue.
  alignas(64) std::atomic<uint64_t> Tail{0};
  alignas(64) std::atomic<uint64_t> Head{0};
  alignas(64) std::atomic<uint64_t> MaxDepth{0};
};

} // namespace satm

#endif // SATM_SUPPORT_SHARDQUEUE_H
