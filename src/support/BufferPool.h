//===- support/BufferPool.h - Recycled fixed-size I/O buffers --*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A mutex-guarded free list of fixed-size byte buffers for the network
/// front end. Connections rent a read buffer per socket drain and return
/// it when the drain's requests are decoded; the pool bounds allocation
/// churn at the peak number of concurrent drains instead of one malloc
/// per read() call.
///
/// The handoff discipline matters more than the pooling: an I/O thread
/// fills a rented buffer from the socket, decodes requests out of it,
/// and the decoded values (plain Frame copies) — not the buffer — cross
/// into the STM worker threads. The buffer itself is returned before the
/// handoff, so no worker ever observes I/O-thread memory. This is the
/// privatization boundary of Khyzha et al.'s "Safe Privatization in
/// Transactional Memory" kept trivially safe by construction: shared
/// data enters the STM only through kv::Store's barriers, never through
/// recycled I/O memory.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_SUPPORT_BUFFERPOOL_H
#define SATM_SUPPORT_BUFFERPOOL_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace satm {

class BufferPool {
public:
  /// \p BufBytes is the capacity of every buffer handed out; \p MaxFree
  /// caps the free list so a one-off burst does not pin its high-water
  /// mark in memory forever.
  explicit BufferPool(size_t BufBytes = 16 * 1024, size_t MaxFree = 64)
      : Bytes(BufBytes), MaxFree(MaxFree) {}

  size_t bufferBytes() const { return Bytes; }

  /// Rents a buffer of bufferBytes() capacity (contents undefined).
  std::unique_ptr<uint8_t[]> rent() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (!Free.empty()) {
        std::unique_ptr<uint8_t[]> B = std::move(Free.back());
        Free.pop_back();
        ++Reused;
        return B;
      }
      ++Allocated;
    }
    return std::make_unique<uint8_t[]>(Bytes); // The malloc stays unlocked.
  }

  /// Returns a buffer previously rented from this pool.
  void giveBack(std::unique_ptr<uint8_t[]> B) {
    if (!B)
      return;
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Free.size() < MaxFree)
      Free.push_back(std::move(B));
    // else: drop it — the burst that needed it is over.
  }

  struct Stats {
    uint64_t Allocated; ///< Fresh heap allocations (monotone).
    uint64_t Reused;    ///< Rentals served from the free list (monotone).
    size_t FreeCount;   ///< Buffers currently parked.
  };
  Stats stats() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return {Allocated, Reused, Free.size()};
  }

private:
  const size_t Bytes;
  const size_t MaxFree;
  mutable std::mutex Mutex;
  std::vector<std::unique_ptr<uint8_t[]>> Free;
  uint64_t Allocated = 0;
  uint64_t Reused = 0;
};

} // namespace satm

#endif // SATM_SUPPORT_BUFFERPOOL_H
