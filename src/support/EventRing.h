//===- support/EventRing.h - Lock-free fixed-capacity event ring *- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-capacity, overwrite-oldest event ring used by the SATM_TRACE
/// runtime tracer (one ring per thread; see stm/Stats.h). All cursors are
/// relaxed atomics; a push is one fetch_add plus two stores, so recording
/// an event costs a handful of instructions even on the barrier-conflict
/// paths.
///
/// Protocol: a writer claims a monotonically increasing index with
/// fetch_add on Head, stamps the slot's sequence word with a busy marker,
/// stores the payload, then publishes by storing the claim index into the
/// sequence word (release). A drain walks the retained window oldest-first
/// and accepts a slot only if its sequence word matches the expected index
/// before and after copying the payload — a mid-write or since-overwritten
/// slot is skipped, never returned torn.
///
/// Concurrency contract: any number of writers are safe while the ring
/// does not wrap (fewer than Capacity events between clears), because
/// distinct claim indices then map to distinct slots. Once wrapped, the
/// ring must be single-writer (the per-thread trace rings are), since two
/// writers Capacity apart would race on one slot's payload. Draining while
/// writers are active only skips in-flight slots; for a loss-free drain,
/// quiesce the writers first.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_SUPPORT_EVENTRING_H
#define SATM_SUPPORT_EVENTRING_H

#include <atomic>
#include <cstdint>
#include <vector>

namespace satm {

template <typename T, unsigned CapacityPow2> class EventRing {
public:
  static constexpr uint64_t Capacity = uint64_t(1) << CapacityPow2;

  /// Records \p E, overwriting the oldest retained event when full.
  void push(const T &E) {
    uint64_t Idx = Head.fetch_add(1, std::memory_order_relaxed);
    Slot &S = Slots[Idx & Mask];
    // Invalidate before touching the payload so a concurrent drain never
    // accepts a half-written event.
    S.Seq.store(Idx | BusyBit, std::memory_order_relaxed);
    S.Value = E;
    S.Seq.store(Idx, std::memory_order_release);
  }

  /// Total events pushed since construction / the last clear().
  uint64_t written() const { return Head.load(std::memory_order_acquire); }

  /// Events pushed but no longer retrievable (overwritten by wrap-around).
  uint64_t dropped() const {
    uint64_t W = written();
    return W > Capacity ? W - Capacity : 0;
  }

  /// Appends the retained events, oldest first, to \p Out. Slots that are
  /// mid-write (or overwritten underneath the walk) are skipped. \returns
  /// the number of events appended.
  size_t drain(std::vector<T> &Out) const {
    uint64_t End = written();
    uint64_t Begin = End > Capacity ? End - Capacity : 0;
    size_t Appended = 0;
    for (uint64_t I = Begin; I < End; ++I) {
      const Slot &S = Slots[I & Mask];
      if (S.Seq.load(std::memory_order_acquire) != I)
        continue;
      T Copy = S.Value;
      // Seqlock-style recheck: the copy is valid only if no writer claimed
      // the slot while we read it.
      if (S.Seq.load(std::memory_order_acquire) != I)
        continue;
      Out.push_back(Copy);
      ++Appended;
    }
    return Appended;
  }

  /// Empties the ring and rewinds the cursors. Callers must ensure no
  /// writer is concurrently pushing.
  void clear() {
    for (Slot &S : Slots)
      S.Seq.store(EmptySeq, std::memory_order_relaxed);
    Head.store(0, std::memory_order_release);
  }

private:
  static constexpr uint64_t Mask = Capacity - 1;
  static constexpr uint64_t BusyBit = uint64_t(1) << 63;
  /// Has BusyBit set, so it never equals a claim index.
  static constexpr uint64_t EmptySeq = ~uint64_t(0);

  struct Slot {
    std::atomic<uint64_t> Seq{EmptySeq};
    T Value{};
  };

  std::atomic<uint64_t> Head{0};
  Slot Slots[Capacity];
};

} // namespace satm

#endif // SATM_SUPPORT_EVENTRING_H
