//===- support/FaultInjector.cpp - Deterministic fault injection ---------===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

#include "support/Rng.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

using namespace satm;

const char *satm::faultSiteName(FaultSite S) {
  switch (S) {
  case FaultSite::TxnOpen:
    return "TxnOpen";
  case FaultSite::TxnCommit:
    return "TxnCommit";
  case FaultSite::LazyOpen:
    return "LazyOpen";
  case FaultSite::LazyCommit:
    return "LazyCommit";
  case FaultSite::BarrierAcquire:
    return "BarrierAcquire";
  case FaultSite::QuiesceStall:
    return "QuiesceStall";
  case FaultSite::HeapAlloc:
    return "HeapAlloc";
  case FaultSite::LogAppend:
    return "LogAppend";
  case FaultSite::LogFsync:
    return "LogFsync";
  case FaultSite::RecoveryReplay:
    return "RecoveryReplay";
  case FaultSite::NetAccept:
    return "NetAccept";
  case FaultSite::NetRead:
    return "NetRead";
  case FaultSite::NetWrite:
    return "NetWrite";
  case FaultSite::LogEnospc:
    return "LogEnospc";
  case FaultSite::CkptWrite:
    return "CkptWrite";
  case FaultSite::CkptRename:
    return "CkptRename";
  }
  return "?";
}

const char *satm::faultSiteKey(FaultSite S) {
  switch (S) {
  case FaultSite::TxnOpen:
    return "txn_open";
  case FaultSite::TxnCommit:
    return "txn_commit";
  case FaultSite::LazyOpen:
    return "lazy_open";
  case FaultSite::LazyCommit:
    return "lazy_commit";
  case FaultSite::BarrierAcquire:
    return "barrier_delay";
  case FaultSite::QuiesceStall:
    return "quiesce_stall";
  case FaultSite::HeapAlloc:
    return "heap_alloc";
  case FaultSite::LogAppend:
    return "log_append";
  case FaultSite::LogFsync:
    return "log_fsync";
  case FaultSite::RecoveryReplay:
    return "recovery_replay";
  case FaultSite::NetAccept:
    return "net_accept";
  case FaultSite::NetRead:
    return "net_read";
  case FaultSite::NetWrite:
    return "net_write";
  case FaultSite::LogEnospc:
    return "log_enospc";
  case FaultSite::CkptWrite:
    return "ckpt_write";
  case FaultSite::CkptRename:
    return "ckpt_rename";
  }
  return "?";
}

namespace {

/// Default pause-loop iterations for the delay sites.
constexpr uint32_t DefaultDelaySpins = 256;

/// The armed campaign. Generation invalidates every thread's cached
/// stream; NextOrdinal hands out default thread tags in first-use order.
struct Campaign {
  std::mutex Mutex; ///< Serializes arm()/disarm().
  FaultConfig C;
  std::atomic<uint64_t> Generation{0};
  std::atomic<uint64_t> NextOrdinal{0};
  std::atomic<uint64_t> Fired[NumFaultSites] = {};

  static Campaign &get() {
    static Campaign A;
    return A;
  }
};

/// Per-thread decision stream. Tag pinning (setThreadTag) is sticky across
/// re-arms so a replay test can arm twice without re-pinning.
struct TlsFaultState {
  uint64_t Generation = 0;
  uint64_t Tag = 0;
  bool HasPinnedTag = false;
  bool Suppressed = false;
  Rng Stream{0};
};

thread_local TlsFaultState TlsFault;

void reseed(TlsFaultState &T, Campaign &A) {
  if (!T.HasPinnedTag)
    T.Tag = A.NextOrdinal.fetch_add(1, std::memory_order_relaxed);
  // SplitMix inside Rng's constructor decorrelates nearby tags; the odd
  // multiplier spreads them across the seed space first.
  T.Stream = Rng(A.C.Seed ^ (0x9e3779b97f4a7c15ull * (T.Tag + 1)));
  T.Generation = A.Generation.load(std::memory_order_acquire);
}

} // namespace

bool satm::detail::faultFireSlow(FaultSite S) {
  Campaign &A = Campaign::get();
  TlsFaultState &T = TlsFault;
  if (T.Suppressed)
    return false;
  if (T.Generation != A.Generation.load(std::memory_order_acquire))
    reseed(T, A);
  // One draw per armed decision regardless of outcome: a thread's stream
  // position depends only on how many fault points it has passed, never on
  // which of them fired.
  uint32_t Draw = uint32_t(T.Stream.next() >> 32);
  uint32_t P = A.C.Prob[unsigned(S)];
  if (P != UINT32_MAX && (P == 0 || Draw >= P))
    return false;
  A.Fired[unsigned(S)].fetch_add(1, std::memory_order_relaxed);
  if (A.C.KillOnFire) [[unlikely]]
    std::_Exit(FaultKillExitCode); // Simulated crash: no flushes, no atexit.
  return true;
}

void satm::FaultInjector::arm(const FaultConfig &C) {
  Campaign &A = Campaign::get();
  std::lock_guard<std::mutex> Lock(A.Mutex);
  A.C = C;
  for (unsigned I = 0; I < NumFaultSites; ++I) {
    A.Fired[I].store(0, std::memory_order_relaxed);
    if (A.C.Arg[I] == 0)
      A.C.Arg[I] = DefaultDelaySpins;
  }
  A.NextOrdinal.store(0, std::memory_order_relaxed);
  A.Generation.fetch_add(1, std::memory_order_release);
  bool Any = false;
  for (unsigned I = 0; I < NumFaultSites; ++I)
    Any |= C.Prob[I] != 0;
  detail::FaultsArmed.store(Any, std::memory_order_release);
}

void satm::FaultInjector::disarm() {
  Campaign &A = Campaign::get();
  std::lock_guard<std::mutex> Lock(A.Mutex);
  detail::FaultsArmed.store(false, std::memory_order_release);
  A.Generation.fetch_add(1, std::memory_order_release);
}

uint64_t satm::FaultInjector::firedCount(FaultSite S) {
  return Campaign::get().Fired[unsigned(S)].load(std::memory_order_relaxed);
}

uint64_t satm::FaultInjector::firedTotal() {
  uint64_t Sum = 0;
  for (unsigned I = 0; I < NumFaultSites; ++I)
    Sum += firedCount(FaultSite(I));
  return Sum;
}

uint32_t satm::FaultInjector::arg(FaultSite S) {
  return Campaign::get().C.Arg[unsigned(S)];
}

void satm::FaultInjector::setThreadSuppressed(bool On) {
  TlsFault.Suppressed = On;
}

void satm::FaultInjector::setThreadTag(uint64_t Tag) {
  Campaign &A = Campaign::get();
  TlsFaultState &T = TlsFault;
  T.Tag = Tag;
  T.HasPinnedTag = true;
  reseed(T, A);
}

bool satm::FaultInjector::parse(const char *Spec, FaultConfig &Out,
                                std::string &Err) {
  FaultConfig C;
  std::string S(Spec ? Spec : "");
  size_t Pos = 0;
  while (Pos < S.size()) {
    size_t Comma = S.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = S.size();
    std::string Tok = S.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    if (Tok.empty())
      continue;
    size_t Eq = Tok.find('=');
    if (Eq == std::string::npos) {
      Err = "token '" + Tok + "' is not key=value";
      return false;
    }
    std::string Key = Tok.substr(0, Eq);
    std::string Val = Tok.substr(Eq + 1);
    if (Key == "seed") {
      C.Seed = std::strtoull(Val.c_str(), nullptr, 0);
      continue;
    }
    if (Key == "kill") {
      if (Val != "0" && Val != "1") {
        Err = "kill must be 0 or 1, got '" + Val + "'";
        return false;
      }
      C.KillOnFire = Val == "1";
      continue;
    }
    int Site = -1;
    for (unsigned I = 0; I < NumFaultSites; ++I)
      if (Key == faultSiteKey(FaultSite(I)))
        Site = int(I);
    if (Site < 0) {
      Err = "unknown fault site '" + Key + "'";
      return false;
    }
    uint32_t Arg = 0;
    size_t Colon = Val.find(':');
    if (Colon != std::string::npos) {
      Arg = uint32_t(std::strtoul(Val.c_str() + Colon + 1, nullptr, 0));
      Val.resize(Colon);
    }
    char *End = nullptr;
    double Rate = std::strtod(Val.c_str(), &End);
    if (End == Val.c_str() || *End || !(Rate >= 0.0) || Rate > 1.0) {
      Err = "rate for '" + Key + "' must be in [0,1], got '" + Val + "'";
      return false;
    }
    C.Prob[Site] =
        Rate >= 1.0 ? UINT32_MAX : uint32_t(std::ldexp(Rate, 32));
    C.Arg[Site] = Arg;
  }
  Out = C;
  return true;
}

void satm::faultSpin(uint32_t Iters) {
  for (uint32_t I = 0; I < Iters; ++I)
#if defined(__x86_64__)
    __builtin_ia32_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

namespace {

/// SATM_FAULTS bootstrap, same pattern as SATM_TRACE: evaluated once at
/// startup. A malformed spec is a hard error — silently running a
/// robustness campaign with no faults armed would be worse.
[[maybe_unused]] const bool EnvFaultsArmed = [] {
  const char *E = std::getenv("SATM_FAULTS");
  if (!E || !*E)
    return false;
  FaultConfig C;
  std::string Err;
  if (!FaultInjector::parse(E, C, Err)) {
    std::fprintf(stderr, "satm: bad SATM_FAULTS spec: %s\n", Err.c_str());
    std::exit(2);
  }
  FaultInjector::arm(C);
  return true;
}();

} // namespace
