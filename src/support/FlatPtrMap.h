//===- support/FlatPtrMap.h - Allocation-free pointer tables ---*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two flat, pointer-keyed lookup structures for transaction-descriptor hot
/// paths, where a std::unordered_map's node allocation per first-touch is
/// the dominant cost (ISSUE 2; compare KVell's flat per-thread indexes):
///
///  - FlatPtrMap<V>: an exact open-addressing hash table (linear probing,
///    power-of-two capacity). clear() bumps a generation stamp instead of
///    touching the slot array, so between-transaction reset is O(1) and the
///    table's storage is reused for the descriptor's whole lifetime —
///    steady-state insert/find never allocate.
///
///  - DirectMapFilter: a fixed-size direct-mapped *lossy* cache of
///    (key, tag) pairs, also generation-cleared. A hit may be missed after
///    an index collision (the newer key evicts), but a reported hit is
///    exact: both key and tag compare equal. Used as the read-set and
///    undo-log dedup filters, where a false miss only costs a duplicate
///    log entry, never correctness.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_SUPPORT_FLATPTRMAP_H
#define SATM_SUPPORT_FLATPTRMAP_H

#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>

namespace satm {

/// Multiplicative pointer hash (Fibonacci constant); the low alignment bits
/// of pointer keys carry no entropy, so they are shifted out first.
inline uint64_t hashPtrKey(uintptr_t Key) {
  return (static_cast<uint64_t>(Key) >> 3) * 0x9e3779b97f4a7c15ull;
}

/// Open-addressing pointer-keyed map with O(1) generation-stamp clearing.
///
/// Slots whose generation differs from the map's are logically empty: a
/// find probe may stop at them and an insert probe may claim them, which is
/// what makes clear() free. Values must be trivially copyable. There is no
/// erase — the intended use truncates an external dense array (the write
/// lock vector) and lets stale entries fail their caller-side validity
/// check; the next insert of the same key overwrites in place.
template <typename V> class FlatPtrMap {
public:
  FlatPtrMap() = default;
  FlatPtrMap(const FlatPtrMap &) = delete;
  FlatPtrMap &operator=(const FlatPtrMap &) = delete;

  /// Number of live (current-generation) entries.
  size_t size() const { return Count; }

  /// Logical capacity before the next grow.
  size_t capacity() const { return Cap; }

  /// O(1): invalidates every entry by bumping the generation stamp.
  void clear() {
    ++Gen;
    Count = 0;
  }

  /// Inserts \p Key -> \p Value, overwriting any current-generation entry
  /// for the same key. Amortized allocation-free: the slot array grows
  /// (rarely) but is never freed or rehash-cleared between clear() calls.
  void insert(const void *Key, V Value) {
    assert(Key && "null key is the empty-slot sentinel");
    if ((Count + 1) * 4 > Cap * 3) // Load factor 3/4.
      grow();
    Entry &E = probe(Key);
    if (E.Gen != Gen || E.Key != Key) {
      E.Key = Key;
      E.Gen = Gen;
      ++Count;
    }
    E.Value = Value;
  }

  /// Returns the value stored for \p Key in the current generation, or
  /// nullptr. The pointer is invalidated by the next insert or clear.
  const V *find(const void *Key) const {
    if (!Cap)
      return nullptr;
    const Entry &E = const_cast<FlatPtrMap *>(this)->probe(Key);
    return (E.Gen == Gen && E.Key == Key) ? &E.Value : nullptr;
  }

private:
  struct Entry {
    const void *Key = nullptr;
    V Value{};
    uint64_t Gen = 0; ///< Entry is live iff this matches the map's Gen.
  };

  /// First slot that either holds \p Key (current generation) or is
  /// logically empty. Linear probing; the load factor bound guarantees an
  /// empty slot exists.
  Entry &probe(const void *Key) {
    size_t Mask = Cap - 1;
    size_t I = hashPtrKey(reinterpret_cast<uintptr_t>(Key)) & Mask;
    for (;;) {
      Entry &E = Slots[I];
      if (E.Gen != Gen || E.Key == nullptr || E.Key == Key)
        return E;
      I = (I + 1) & Mask;
    }
  }

  void grow() {
    size_t NewCap = Cap ? Cap * 2 : 64;
    std::unique_ptr<Entry[]> Old = std::move(Slots);
    size_t OldCap = Cap;
    Slots = std::make_unique<Entry[]>(NewCap);
    Cap = NewCap;
    // Fresh slots default to Gen 0; restart our stamp above it so the new
    // array is logically empty even if the map's stamp was ever 0.
    uint64_t LiveGen = Gen;
    Gen = LiveGen + 1;
    Count = 0;
    for (size_t I = 0; I < OldCap; ++I)
      if (Old[I].Gen == LiveGen && Old[I].Key)
        insert(Old[I].Key, Old[I].Value);
  }

  std::unique_ptr<Entry[]> Slots;
  size_t Cap = 0;
  size_t Count = 0;
  uint64_t Gen = 1;
};

/// Fixed-size direct-mapped (key, tag) cache with generation clearing.
///
/// hitOrInstall() answers "was (Key, Tag) seen since the last clear?" — and
/// if not, remembers it, evicting whatever shared its cache line. Misses
/// can be spurious (after eviction); hits never are. \p SizeLog2 fixes the
/// table at 2^SizeLog2 entries, embedded in the owner (no heap storage).
template <unsigned SizeLog2 = 8> class DirectMapFilter {
public:
  static constexpr size_t Size = size_t(1) << SizeLog2;

  /// O(1): invalidates every entry.
  void clear() { ++Gen; }

  /// True iff (Key, Tag) is present; installs it (possibly evicting a
  /// colliding entry) when absent. \p Key must be nonzero.
  bool hitOrInstall(uintptr_t Key, uint64_t Tag = 0) {
    assert(Key && "null key is indistinguishable from an empty slot");
    Entry &E = Slots[hashPtrKey(Key) & (Size - 1)];
    if (E.Gen == Gen && E.Key == Key && E.Tag == Tag)
      return true;
    E.Key = Key;
    E.Tag = Tag;
    E.Gen = Gen;
    return false;
  }

  /// True iff (Key, Tag) is present, without installing on a miss.
  bool contains(uintptr_t Key, uint64_t Tag = 0) const {
    const Entry &E = Slots[hashPtrKey(Key) & (Size - 1)];
    return E.Gen == Gen && E.Key == Key && E.Tag == Tag;
  }

private:
  struct Entry {
    uintptr_t Key = 0;
    uint64_t Tag = 0;
    uint64_t Gen = 0;
  };

  Entry Slots[Size] = {};
  uint64_t Gen = 1;
};

} // namespace satm

#endif // SATM_SUPPORT_FLATPTRMAP_H
