//===- support/Rng.h - Deterministic pseudo-random numbers -----*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic xorshift128+ generator. Benchmarks and
/// workload generators use this instead of <random> so that every run of an
/// experiment sees the same input stream regardless of platform.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_SUPPORT_RNG_H
#define SATM_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace satm {

/// Deterministic xorshift128+ pseudo-random number generator.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding so nearby seeds give unrelated streams.
    auto Mix = [&Seed]() {
      Seed += 0x9e3779b97f4a7c15ull;
      uint64_t Z = Seed;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
      return Z ^ (Z >> 31);
    };
    State0 = Mix();
    State1 = Mix();
    if (State0 == 0 && State1 == 0)
      State1 = 1;
  }

  /// Returns the next 64 pseudo-random bits.
  uint64_t next() {
    uint64_t S1 = State0;
    const uint64_t S0 = State1;
    State0 = S0;
    S1 ^= S1 << 23;
    State1 = S1 ^ S0 ^ (S1 >> 18) ^ (S0 >> 5);
    return State1 + S0;
  }

  /// Returns a uniformly distributed value in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    return next() % Bound;
  }

  /// Returns a uniformly distributed value in [Lo, Hi].
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(nextBelow(
                    static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability Percent/100.
  bool nextPercent(unsigned Percent) { return nextBelow(100) < Percent; }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

private:
  uint64_t State0;
  uint64_t State1;
};

} // namespace satm

#endif // SATM_SUPPORT_RNG_H
