//===- support/Table.h - Aligned text table printer ------------*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny column-aligned table printer. Every benchmark harness prints its
/// paper table/figure through this so that bench_output.txt is uniform and
/// diffable against EXPERIMENTS.md.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_SUPPORT_TABLE_H
#define SATM_SUPPORT_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace satm {

/// Collects rows of cells and prints them with aligned columns. Numeric
/// columns (every body cell parses as a number) are right-aligned so the
/// digits of a latency/throughput column line up and stay diffable in
/// bench_output.txt; everything else is left-aligned. Widths are measured
/// in display columns (UTF-8 code points), not bytes, so a multi-byte cell
/// like "µs" does not skew its column.
class Table {
public:
  explicit Table(std::vector<std::string> Header) {
    addRow(std::move(Header));
    HasHeader = true;
  }
  Table() = default;

  /// Appends one row. Rows may have differing cell counts.
  void addRow(std::vector<std::string> Cells) {
    Rows.push_back(std::move(Cells));
  }

  /// Convenience: formats a double with the given precision.
  static std::string num(double Value, int Precision = 2) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
    return Buf;
  }

  /// Convenience: formats an integer.
  static std::string num(uint64_t Value) { return std::to_string(Value); }

  /// Display width: code points, not bytes (continuation bytes are free).
  /// Combining marks and wide glyphs are out of scope for ASCII-ish bench
  /// tables; code-point counting fixes the mundane "µ"/"×" cases.
  static size_t displayWidth(const std::string &S) {
    size_t W = 0;
    for (unsigned char C : S)
      if ((C & 0xC0) != 0x80)
        ++W;
    return W;
  }

  /// True for cells shaped like numbers: optional sign, digits with
  /// embedded '.'/',' separators, optional trailing '%' or 'x'.
  static bool looksNumeric(const std::string &S) {
    if (S.empty())
      return false;
    size_t I = (S[0] == '+' || S[0] == '-') ? 1 : 0;
    size_t End = S.size();
    if (End > I && (S[End - 1] == '%' || S[End - 1] == 'x'))
      --End;
    bool Digit = false;
    for (; I < End; ++I) {
      char C = S[I];
      if (C >= '0' && C <= '9')
        Digit = true;
      else if (C != '.' && C != ',')
        return false;
    }
    return Digit;
  }

  /// Renders the table (without title) into a string.
  std::string str() const {
    std::vector<size_t> Widths;
    for (const auto &Row : Rows)
      for (size_t I = 0; I < Row.size(); ++I) {
        if (Widths.size() <= I)
          Widths.resize(I + 1, 0);
        size_t W = displayWidth(Row[I]);
        if (W > Widths[I])
          Widths[I] = W;
      }
    // A column is numeric iff it has at least one body cell and every body
    // cell looks numeric (the header label does not vote).
    std::vector<bool> Numeric(Widths.size(), false);
    for (size_t I = 0; I < Widths.size(); ++I) {
      bool Any = false, All = true;
      for (size_t R = HasHeader ? 1 : 0; R < Rows.size(); ++R) {
        if (I >= Rows[R].size())
          continue;
        Any = true;
        if (!looksNumeric(Rows[R][I]))
          All = false;
      }
      Numeric[I] = Any && All;
    }
    std::string Out;
    for (size_t R = 0; R < Rows.size(); ++R) {
      const auto &Row = Rows[R];
      for (size_t I = 0; I < Row.size(); ++I) {
        std::string Pad(Widths[I] - displayWidth(Row[I]), ' ');
        if (Numeric[I])
          Out += Pad + Row[I];
        else
          Out += Row[I] + Pad;
        Out += I + 1 == Row.size() ? "" : "  ";
      }
      Out += '\n';
      if (R == 0 && HasHeader) {
        size_t Total = 0;
        for (size_t W : Widths)
          Total += W + 2;
        Out.append(Total >= 2 ? Total - 2 : 0, '-');
        Out += '\n';
      }
    }
    return Out;
  }

  /// Prints the table to stdout, optionally preceded by a title line.
  void print(const std::string &Title = "") const {
    if (!Title.empty())
      std::printf("\n== %s ==\n", Title.c_str());
    std::fputs(str().c_str(), stdout);
    std::fflush(stdout);
  }

private:
  std::vector<std::vector<std::string>> Rows;
  bool HasHeader = false;
};

} // namespace satm

#endif // SATM_SUPPORT_TABLE_H
