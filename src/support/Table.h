//===- support/Table.h - Aligned text table printer ------------*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny column-aligned table printer. Every benchmark harness prints its
/// paper table/figure through this so that bench_output.txt is uniform and
/// diffable against EXPERIMENTS.md.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_SUPPORT_TABLE_H
#define SATM_SUPPORT_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace satm {

/// Collects rows of cells and prints them with aligned columns.
class Table {
public:
  explicit Table(std::vector<std::string> Header) {
    addRow(std::move(Header));
    HasHeader = true;
  }
  Table() = default;

  /// Appends one row. Rows may have differing cell counts.
  void addRow(std::vector<std::string> Cells) {
    Rows.push_back(std::move(Cells));
  }

  /// Convenience: formats a double with the given precision.
  static std::string num(double Value, int Precision = 2) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
    return Buf;
  }

  /// Convenience: formats an integer.
  static std::string num(uint64_t Value) { return std::to_string(Value); }

  /// Prints the table to stdout, optionally preceded by a title line.
  void print(const std::string &Title = "") const {
    if (!Title.empty())
      std::printf("\n== %s ==\n", Title.c_str());
    std::vector<size_t> Widths;
    for (const auto &Row : Rows)
      for (size_t I = 0; I < Row.size(); ++I) {
        if (Widths.size() <= I)
          Widths.resize(I + 1, 0);
        if (Row[I].size() > Widths[I])
          Widths[I] = Row[I].size();
      }
    for (size_t R = 0; R < Rows.size(); ++R) {
      const auto &Row = Rows[R];
      for (size_t I = 0; I < Row.size(); ++I)
        std::printf("%-*s%s", static_cast<int>(Widths[I]), Row[I].c_str(),
                    I + 1 == Row.size() ? "" : "  ");
      std::printf("\n");
      if (R == 0 && HasHeader) {
        size_t Total = 0;
        for (size_t W : Widths)
          Total += W + 2;
        for (size_t I = 0; I + 2 < Total; ++I)
          std::printf("-");
        std::printf("\n");
      }
    }
    std::fflush(stdout);
  }

private:
  std::vector<std::vector<std::string>> Rows;
  bool HasHeader = false;
};

} // namespace satm

#endif // SATM_SUPPORT_TABLE_H
