//===- support/Stopwatch.h - Wall-clock timing helper ----------*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic wall-clock stopwatch used by the experiment harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_SUPPORT_STOPWATCH_H
#define SATM_SUPPORT_STOPWATCH_H

#include <chrono>

namespace satm {

/// A monotonic stopwatch measuring elapsed wall-clock time.
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Elapsed time in seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed time in milliseconds.
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace satm

#endif // SATM_SUPPORT_STOPWATCH_H
