//===- support/Zipf.h - Deterministic key-distribution generators -*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Key-distribution generators for the SATM-KV workload drivers: a YCSB-style
/// Zipfian generator (Gray et al.'s rejection-free inversion, the same
/// algorithm KVell's and YCSB's drivers use) and a trivial uniform one, both
/// driven by the repo's deterministic Rng.
///
/// Like Rng, every stream must be bit-identical across platforms so a seeded
/// benchmark run is reproducible anywhere. The Zipfian inversion needs pow(),
/// whose libm results are *not* guaranteed correctly rounded and differ
/// across platforms by ULPs — enough to flip a sample near a bucket
/// boundary. detPow() below therefore computes x^y = exp2(y*log2(x)) from
/// fixed-iteration series using only exactly-rounded IEEE operations
/// (+, -, *, /, frexp, ldexp), which makes the whole generator deterministic
/// by construction. Accuracy is ~1e-14 relative, far beyond what a key
/// distribution needs.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_SUPPORT_ZIPF_H
#define SATM_SUPPORT_ZIPF_H

#include "support/Rng.h"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <optional>

namespace satm {

/// Deterministic log2(X) for finite X > 0: mantissa via the atanh series
/// (fixed 16 odd terms; |t| <= 1/3 so the truncation error is < 1e-17),
/// exponent exactly via frexp.
inline double detLog2(double X) {
  assert(X > 0 && "detLog2 requires a positive argument");
  int Exp;
  double M = std::frexp(X, &Exp); // M in [0.5, 1), exactly.
  if (M == 0.5) // Exact powers of two (including 1.0) get exact logs,
    return double(Exp - 1); // so detPow(1, y) == 1 and detPow(2^k, y) is
                            // free of the series' last-ULP wobble.
  double T = (M - 1.0) / (M + 1.0);
  double T2 = T * T;
  double Sum = 0;
  double Term = T;
  for (int K = 0; K < 16; ++K) {
    Sum += Term / double(2 * K + 1);
    Term *= T2;
  }
  // log(M) = 2*atanh(T); divide by log(2) once (exactly-rounded constant).
  return double(Exp) + 2.0 * Sum / 0.6931471805599453;
}

/// Deterministic 2^Y for |Y| < 1024: fractional part via the exp Taylor
/// series (fixed 24 terms; argument <= log 2 so truncation is < 1e-19),
/// integer part exactly via ldexp.
inline double detExp2(double Y) {
  double Fl = std::floor(Y);
  double F = Y - Fl; // In [0, 1).
  double X = F * 0.6931471805599453;
  double Sum = 1.0;
  double Term = 1.0;
  for (int K = 1; K < 24; ++K) {
    Term *= X / double(K);
    Sum += Term;
  }
  return std::ldexp(Sum, int(Fl));
}

/// Deterministic Base^Exp for Base > 0 (and the conventional 0^0 = 1,
/// 0^positive = 0 edge cases the generators rely on).
inline double detPow(double Base, double Exp) {
  if (Exp == 0.0)
    return 1.0;
  if (Base == 0.0)
    return 0.0;
  return detExp2(Exp * detLog2(Base));
}

/// Uniform key generator over [0, N).
class UniformKeys {
public:
  UniformKeys(uint64_t N, uint64_t Seed) : R(Seed), N(N) {
    assert(N > 0 && "empty key space");
  }

  uint64_t next() { return R.nextBelow(N); }

private:
  Rng R;
  uint64_t N;
};

/// Zipfian key generator over [0, N) with parameter \p Theta (YCSB calls it
/// the "zipfian constant", default 0.99): rank r is drawn with probability
/// proportional to 1/(r+1)^Theta via the closed-form inversion, so there is
/// no rejection loop and exactly one Rng draw per key.
///
/// With \p Scramble (the default, YCSB's "scrambled zipfian"), ranks are
/// FNV-hashed over the key space so the hot keys are spread across it
/// instead of clustering at 0..k — without this, hot keys are adjacent and
/// would also be hash-adjacent in any index that mixes keys weakly.
class ZipfKeys {
public:
  ZipfKeys(uint64_t N, uint64_t Seed, double Theta = 0.99,
           bool Scramble = true)
      : R(Seed), N(N), Theta(Theta), Scramble(Scramble) {
    assert(N > 0 && "empty key space");
    assert(Theta > 0 && Theta < 1 && "theta must be in (0, 1)");
    Zetan = zeta(N, Theta);
    double Zeta2 = zeta(2, Theta);
    Alpha = 1.0 / (1.0 - Theta);
    Eta = (1.0 - detPow(2.0 / double(N), 1.0 - Theta)) /
          (1.0 - Zeta2 / Zetan);
    HalfPowTheta = detPow(0.5, Theta);
  }

  /// Harmonic-like normalizer sum_{i=1..N} 1/i^Theta (exposed for tests).
  static double zeta(uint64_t N, double Theta) {
    double Sum = 0;
    for (uint64_t I = 1; I <= N; ++I)
      Sum += 1.0 / detPow(double(I), Theta);
    return Sum;
  }

  uint64_t next() {
    double U = R.nextDouble();
    double Uz = U * Zetan;
    uint64_t Rank;
    if (Uz < 1.0)
      Rank = 0;
    else if (Uz < 1.0 + HalfPowTheta)
      Rank = 1;
    else
      Rank = uint64_t(double(N) * detPow(Eta * U - Eta + 1.0, Alpha));
    if (Rank >= N)
      Rank = N - 1;
    return Scramble ? fnv64(Rank) % N : Rank;
  }

  /// FNV-1a over the rank's 8 bytes (the YCSB scramble hash).
  static uint64_t fnv64(uint64_t V) {
    uint64_t H = 14695981039346656037ull;
    for (unsigned I = 0; I < 8; ++I) {
      H ^= (V >> (I * 8)) & 0xff;
      H *= 1099511628211ull;
    }
    return H;
  }

private:
  Rng R;
  uint64_t N;
  double Theta;
  bool Scramble;
  double Zetan, Alpha, Eta, HalfPowTheta;
};

/// Tagged either-or of the two generators, so workload drivers can switch
/// distribution by flag without templating their request loop. The O(N)
/// Zipfian normalizer is only computed when the Zipfian arm is selected.
class KeyGenerator {
public:
  enum class Dist : uint8_t { Uniform, Zipfian };

  KeyGenerator(Dist D, uint64_t N, uint64_t Seed, double Theta = 0.99,
               bool Scramble = true)
      : Uni(N, Seed) {
    if (D == Dist::Zipfian)
      Zipf.emplace(N, Seed, Theta, Scramble);
  }

  uint64_t next() { return Zipf ? Zipf->next() : Uni.next(); }

private:
  UniformKeys Uni;
  std::optional<ZipfKeys> Zipf;
};

} // namespace satm

#endif // SATM_SUPPORT_ZIPF_H
