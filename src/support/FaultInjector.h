//===- support/FaultInjector.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the STM runtime. Named sites in the
/// transaction engines, the isolation barriers, the quiescence machinery
/// and the heap can be armed to fire spurious aborts, delays or allocation
/// failures with per-site probabilities, either programmatically
/// (FaultInjector::arm) or from the SATM_FAULTS environment variable:
///
///   SATM_FAULTS="seed=42,txn_open=0.01,txn_commit=0.05,barrier_delay=0.01:400"
///
/// Every decision comes from a per-thread xorshift128+ stream keyed by
/// (global seed, thread tag), so a thread's fire/no-fire sequence depends
/// only on its tag and on how many fault points it has passed — a failing
/// seeded run replays bit-identically. Thread tags default to arming order
/// (first fault point wins the next ordinal); tests that need cross-run
/// determinism with concurrent threads pin them with setThreadTag().
///
/// Cost when disarmed: one relaxed load of an inline atomic plus a
/// predicted-not-taken branch per site — the same discipline as the
/// SATM_TRACE traceEvent() sites, cheap enough for the Figure 15-17
/// barrier sequences.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_SUPPORT_FAULTINJECTOR_H
#define SATM_SUPPORT_FAULTINJECTOR_H

#include <atomic>
#include <cstdint>
#include <string>

namespace satm {

/// Where an injected fault fires and what firing means there.
enum class FaultSite : uint8_t {
  TxnOpen = 0,    ///< Eager txn: spurious abort as the body starts.
  TxnCommit,      ///< Eager txn: spurious abort entering tryCommit.
  LazyOpen,       ///< Lazy txn: spurious abort as the body starts.
  LazyCommit,     ///< Lazy txn: spurious commit failure entering tryCommit.
  BarrierAcquire, ///< Nt barriers: busy-delay (arg spins) before acquiring.
  QuiesceStall,   ///< Quiescence scans: busy-delay (arg spins) per wait.
  HeapAlloc,      ///< rt::Heap: allocation throws std::bad_alloc.
  LogAppend,      ///< kv::Wal: busy-delay (arg spins) before a ring append.
  LogFsync,       ///< kv::Wal: busy-delay (arg spins) before a batch fsync.
  RecoveryReplay, ///< kv::Wal recovery: abandon the rest of a shard's log.
  NetAccept,      ///< net::Server: drop the freshly accepted connection.
  NetRead,        ///< net::Server I/O: cap this read() to arg bytes,
                  ///< forcing the short-read / partial-frame paths.
  NetWrite,       ///< net::Server I/O: cap this write() to arg bytes,
                  ///< forcing partial-flush backpressure.
  LogEnospc,      ///< kv::Wal drain: the shard write/fsync fails as if the
                  ///< disk returned ENOSPC — the WAL seals into degraded
                  ///< mode instead of aborting.
  CkptWrite,      ///< kv::Checkpointer: the temp-file write/fsync fails;
                  ///< the checkpoint attempt is abandoned, the previous
                  ///< checkpoint stays authoritative.
  CkptRename,     ///< kv::Checkpointer: the publishing rename fails after
                  ///< the temp file is durable.
};

inline constexpr unsigned NumFaultSites = 16;

/// Display name (matches the enumerator).
const char *faultSiteName(FaultSite S);

/// Stable snake_case key used in SATM_FAULTS specs and reports.
const char *faultSiteKey(FaultSite S);

/// A full injection campaign: one seed, one (probability, argument) pair
/// per site. Probabilities are fixed-point thresholds in units of 2^-32;
/// 0 disables a site, UINT32_MAX fires unconditionally. The argument is
/// site-specific (delay sites: pause-loop iterations, default 256).
struct FaultConfig {
  uint64_t Seed = 1;
  uint32_t Prob[NumFaultSites] = {};
  uint32_t Arg[NumFaultSites] = {};
  /// Crash-test mode ("kill=1" in a SATM_FAULTS spec): any site that fires
  /// terminates the process immediately via _Exit(37) — no atexit handlers,
  /// no flushes — after bumping its fired counter. Turns every armed site
  /// into a kill site for recovery testing; the parent harness recognizes
  /// exit code 37 as an injected crash.
  bool KillOnFire = false;
};

/// The exit code of a KillOnFire termination.
inline constexpr int FaultKillExitCode = 37;

namespace detail {

/// Whether any site is armed. Inline so the disabled fast path of every
/// faultPoint() is a relaxed load + predicted branch with no call.
inline std::atomic<bool> FaultsArmed{false};

/// Cold path: seeds the thread stream if stale, draws one decision.
bool faultFireSlow(FaultSite S);

} // namespace detail

/// Static facade over the armed campaign.
class FaultInjector {
public:
  /// Parses a SATM_FAULTS spec ("seed=N" and "site=rate[:arg]" tokens,
  /// comma-separated; rate is a probability in [0,1]). On failure returns
  /// false and describes the problem in \p Err.
  static bool parse(const char *Spec, FaultConfig &Out, std::string &Err);

  /// Installs \p C, zeroes the fired counters, resets thread-ordinal
  /// assignment and invalidates every thread's PRNG stream (they reseed at
  /// their next fault point). Like setTraceEnabled(), call while no thread
  /// is inside the STM.
  static void arm(const FaultConfig &C);

  /// Disables all sites (fired counters are preserved for inspection).
  static void disarm();

  /// True if any site is currently armed.
  static bool armed() {
    return detail::FaultsArmed.load(std::memory_order_relaxed);
  }

  /// Injections fired at \p S since the last arm().
  static uint64_t firedCount(FaultSite S);

  /// Sum of firedCount over all sites.
  static uint64_t firedTotal();

  /// The armed per-site argument (delay sites: spin iterations).
  static uint32_t arg(FaultSite S);

  /// Pins the calling thread's PRNG stream to (seed, Tag) instead of the
  /// default arming-order ordinal, and reseeds immediately. Lets replay
  /// tests make multi-threaded runs scheduling-independent.
  static void setThreadTag(uint64_t Tag);

  /// Suppresses injection on the calling thread while \p On. Used by the
  /// serial-irrevocable contention-manager mode, whose attempts cannot
  /// roll back and therefore must not be injected (including HeapAlloc
  /// failures from the rt layer, which cannot see transaction state).
  /// Suppressed decisions draw nothing, so they do not advance the
  /// thread's stream.
  static void setThreadSuppressed(bool On);
};

/// Injection check for site \p S: false (one relaxed load + predicted
/// branch) when disarmed, otherwise draws from the calling thread's
/// deterministic stream. The caller applies the site's effect.
inline bool faultPoint(FaultSite S) {
  if (!detail::FaultsArmed.load(std::memory_order_relaxed)) [[likely]]
    return false;
  return detail::faultFireSlow(S);
}

/// Busy-delay loop used by the delay sites (BarrierAcquire, QuiesceStall).
void faultSpin(uint32_t Iters);

} // namespace satm

#endif // SATM_SUPPORT_FAULTINJECTOR_H
