//===- support/LatencyHistogram.h - Log-bucketed latency histogram -*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-footprint log-linear histogram for nanosecond latencies, the
/// HdrHistogram/TailBench shape: values below 2^SubBucketBits are counted
/// exactly; above that, each power-of-two range is split into
/// 2^(SubBucketBits-1) linear sub-buckets, bounding the relative
/// quantization error at 2^-(SubBucketBits-1) (3.2% with the default 6
/// bits) across the full uint64 range. record() is two shifts, a branch and
/// an increment — cheap enough to run inside a request loop. Histograms are
/// plain per-thread values merged after the run (no atomics), which is how
/// the kv_service driver aggregates per-thread tails into p50..p99.9.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_SUPPORT_LATENCYHISTOGRAM_H
#define SATM_SUPPORT_LATENCYHISTOGRAM_H

#include <cassert>
#include <cstdint>

namespace satm {

/// Log-linear histogram over uint64 values (nanoseconds by convention).
class LatencyHistogram {
public:
  static constexpr unsigned SubBucketBits = 6;
  /// Linear region: values in [0, 2^SubBucketBits) are exact.
  static constexpr uint64_t LinearMax = uint64_t(1) << SubBucketBits;
  static constexpr unsigned SubBucketsPerGroup = 1u << (SubBucketBits - 1);
  static constexpr unsigned NumGroups = 64 - SubBucketBits;
  static constexpr unsigned NumBuckets =
      unsigned(LinearMax) + NumGroups * SubBucketsPerGroup;

  /// Adds one observation.
  void record(uint64_t V) {
    Counts[bucketIndex(V)]++;
    Total++;
    if (V > Maximum)
      Maximum = V;
  }

  /// Folds \p O into this histogram (per-thread merge).
  LatencyHistogram &operator+=(const LatencyHistogram &O) {
    for (unsigned I = 0; I < NumBuckets; ++I)
      Counts[I] += O.Counts[I];
    Total += O.Total;
    if (O.Maximum > Maximum)
      Maximum = O.Maximum;
    return *this;
  }

  uint64_t count() const { return Total; }
  uint64_t max() const { return Maximum; }

  /// Smallest recorded value's bucket upper bound at or above which
  /// \p Percentile percent of observations lie; 0 on an empty histogram.
  /// The returned value is the inclusive upper bound of the bucket that
  /// crosses the rank, so it over-reports by at most the bucket width
  /// (3.2% relative) and never under-reports a tail.
  uint64_t valueAtPercentile(double Percentile) const {
    assert(Percentile >= 0 && Percentile <= 100 && "percentile out of range");
    if (Total == 0)
      return 0;
    // Rank of the target observation, 1-based, rounding up (p50 of 2
    // observations is the 1st; p99.9 of 1000 is the 1000th).
    uint64_t Rank = uint64_t(Percentile / 100.0 * double(Total) + 0.5);
    if (Rank < 1)
      Rank = 1;
    if (Rank > Total)
      Rank = Total;
    uint64_t Seen = 0;
    for (unsigned I = 0; I < NumBuckets; ++I) {
      Seen += Counts[I];
      if (Seen >= Rank) {
        uint64_t Upper = bucketUpperBound(I);
        return Upper < Maximum ? Upper : Maximum;
      }
    }
    return Maximum;
  }

  /// The four percentiles every kv_service report carries.
  struct Percentiles {
    uint64_t P50 = 0, P95 = 0, P99 = 0, P999 = 0;
  };
  Percentiles percentiles() const {
    return {valueAtPercentile(50), valueAtPercentile(95),
            valueAtPercentile(99), valueAtPercentile(99.9)};
  }

  /// Bucket index of \p V (exposed for tests).
  static unsigned bucketIndex(uint64_t V) {
    if (V < LinearMax)
      return unsigned(V);
    // Top bit position H >= SubBucketBits; group G >= 1 spans
    // [2^(SubBucketBits+G-1), 2^(SubBucketBits+G)) in sub-buckets of
    // width 2^G.
    unsigned H = 63 - unsigned(__builtin_clzll(V));
    unsigned G = H - SubBucketBits + 1;
    unsigned Sub = unsigned(V >> G) - SubBucketsPerGroup;
    return unsigned(LinearMax) + (G - 1) * SubBucketsPerGroup + Sub;
  }

  /// Inclusive upper bound of bucket \p I (exposed for tests).
  static uint64_t bucketUpperBound(unsigned I) {
    assert(I < NumBuckets && "bucket index out of range");
    if (I < LinearMax)
      return I;
    unsigned G = (I - unsigned(LinearMax)) / SubBucketsPerGroup + 1;
    unsigned Sub = (I - unsigned(LinearMax)) % SubBucketsPerGroup;
    return ((uint64_t(SubBucketsPerGroup) + Sub + 1) << G) - 1;
  }

private:
  uint64_t Counts[NumBuckets] = {};
  uint64_t Total = 0;
  uint64_t Maximum = 0;
};

} // namespace satm

#endif // SATM_SUPPORT_LATENCYHISTOGRAM_H
