//===- workloads/Jbb.cpp - JBB-style order processing (Figure 20) --------===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "workloads/Jbb.h"

#include "support/Rng.h"
#include "support/Stopwatch.h"

#include <thread>
#include <vector>

using namespace satm;
using namespace satm::rt;
using namespace satm::workloads;

namespace {

// Warehouse slots: 0 = stock ref-array, 1 = districts int-array,
// 2 = lastOrder ref, 3 = orderCount, 4 = ytd.
const TypeDescriptor WarehouseType("Warehouse", 5, {0, 1, 2});
// Stock entry: quantity, ytd, orderCount.
const TypeDescriptor StockType("Stock", 3, {});
// Order: itemCount, total, firstItem, district.
const TypeDescriptor OrderType("Order", 4, {});
// Per-thread report block: newOrders, payments, statuses, revenue.
const TypeDescriptor ReportType("Report", 4, {});
const TypeDescriptor RefArrayType("ref[]", TypeKind::RefArray);
const TypeDescriptor IntArrayType("int[]", TypeKind::IntArray);

struct JbbDb {
  Heap H;
  std::vector<Object *> Warehouses;
  std::mutex GlobalLock; ///< Synch-mode critical sections.
  JbbConfig Cfg;
};

Object *buildWarehouse(JbbDb &Db, unsigned Wid) {
  const JbbConfig &C = Db.Cfg;
  Object *W = Db.H.allocate(&WarehouseType, BirthState::Shared);
  Object *Stock =
      Db.H.allocateArray(&RefArrayType, C.ItemsPerWarehouse,
                         BirthState::Shared);
  Rng R(500 + Wid);
  for (unsigned I = 0; I < C.ItemsPerWarehouse; ++I) {
    Object *S = Db.H.allocate(&StockType, BirthState::Shared);
    S->rawStore(0, 50 + R.nextBelow(50)); // quantity
    Stock->rawStoreRef(I, S);
  }
  W->rawStoreRef(0, Stock);
  Object *Districts =
      Db.H.allocateArray(&IntArrayType, C.Districts, BirthState::Shared);
  W->rawStoreRef(1, Districts);
  return W;
}

class JbbWorker {
public:
  JbbWorker(JbbDb &Db, ExecMode Mode, const Mem &M, unsigned Tid)
      : Db(Db), Mode(Mode), M(M), R(9000 + Tid) {
    Warehouse = Db.Warehouses[Tid];
    Report = Db.H.allocate(&ReportType, M.birth());
  }

  uint64_t run() {
    for (unsigned Op = 0; Op < Db.Cfg.OpsPerThread; ++Op) {
      unsigned Kind = static_cast<unsigned>(R.nextBelow(100));
      if (Kind < 45)
        newOrder();
      else if (Kind < 88)
        payment();
      else
        orderStatus();
    }
    // The report block is never accessed transactionally: a NAIT site.
    return M.loadNait(Report, 0) + M.loadNait(Report, 1) * 3 +
           M.loadNait(Report, 2) * 7 + M.loadNait(Report, 3);
  }

private:
  void bumpReport(uint32_t Slot, uint64_t Amount) {
    M.storeNait(Report, Slot, M.loadNait(Report, Slot) + Amount);
  }

  void newOrder() {
    // Build the order outside the transaction: a fresh private object
    // (§4's DEA case) initialized with aggregated stores (§6).
    const unsigned NumItems = 3 + static_cast<unsigned>(R.nextBelow(5));
    unsigned District = static_cast<unsigned>(R.nextBelow(Db.Cfg.Districts));
    unsigned FirstItem = static_cast<unsigned>(
        R.nextBelow(Db.Cfg.ItemsPerWarehouse - NumItems));
    Object *Order = Db.H.allocate(&OrderType, M.birth());
    M.withObject(Order, [&](const Mem::ObjAccess &A) {
      A.set(0, NumItems);
      A.set(1, 0);
      A.set(2, FirstItem);
      A.set(3, District);
    });

    uint64_t Total = 0;
    atomicRegion(Mode, Db.GlobalLock, [&](const RegionAccess &A) {
      Total = 0;
      Object *Stock = A.getRef(Warehouse, 0);
      for (unsigned I = 0; I < NumItems; ++I) {
        Object *Item = A.getRef(Stock, FirstItem + I);
        uint64_t Qty = A.get(Item, 0);
        if (Qty < NumItems)
          Qty += 91; // Restock.
        A.set(Item, 0, Qty - 1);
        A.set(Item, 2, A.get(Item, 2) + 1);
        Total += 10 + (Qty & 7);
      }
      // File the order: it becomes publicly reachable here (under DEA
      // the transactional ref store publishes it, §4).
      A.setRef(Warehouse, 2, Order);
      A.set(Warehouse, 3, A.get(Warehouse, 3) + 1);
    });
    // Post-transaction, the order total is recorded on the (now public)
    // order — a non-transactional access that needs its barrier under
    // strong atomicity (the order escaped into the warehouse).
    M.store(Order, 1, Total);
    bumpReport(0, 1);
    bumpReport(3, Total);
  }

  void payment() {
    unsigned District = static_cast<unsigned>(R.nextBelow(Db.Cfg.Districts));
    uint64_t Amount = 1 + R.nextBelow(500);
    atomicRegion(Mode, Db.GlobalLock, [&](const RegionAccess &A) {
      Object *Districts = A.getRef(Warehouse, 1);
      A.set(Districts, District, A.get(Districts, District) + Amount);
      A.set(Warehouse, 4, A.get(Warehouse, 4) + Amount);
    });
    bumpReport(1, 1);
  }

  void orderStatus() {
    uint64_t Seen = 0;
    atomicRegion(Mode, Db.GlobalLock, [&](const RegionAccess &A) {
      Seen = 0;
      Object *LastOrder = A.getRef(Warehouse, 2);
      if (LastOrder) {
        // Read the filed order's summary inside the transaction.
        Seen = A.get(LastOrder, 0) + A.get(Warehouse, 3);
      }
    });
    bumpReport(2, Seen != 0);
  }

  JbbDb &Db;
  ExecMode Mode;
  const Mem &M;
  Rng R;
  Object *Warehouse;
  Object *Report;
};

} // namespace

JbbResult satm::workloads::runJbb(ExecMode Mode, unsigned Threads,
                                  const JbbConfig &C) {
  BarrierPlan Plan = planFor(Mode);
  PlanScope Scope(Plan);
  Mem M(Plan);

  JbbDb Db;
  Db.Cfg = C;
  for (unsigned T = 0; T < Threads; ++T)
    Db.Warehouses.push_back(buildWarehouse(Db, T));

  std::atomic<uint64_t> Digest{0};
  Stopwatch Timer;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&Db, Mode, &M, T, &Digest] {
      Digest.fetch_add(JbbWorker(Db, Mode, M, T).run());
    });
  for (auto &W : Workers)
    W.join();

  JbbResult Result;
  Result.Seconds = Timer.seconds();
  Result.Throughput = uint64_t(Threads) * C.OpsPerThread;
  Result.Checksum = Digest.load();
  return Result;
}
