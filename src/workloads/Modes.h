//===- workloads/Modes.h - Figure 18-20 execution modes --------*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The six execution modes of the paper's scalability figures (18-20):
/// lock-based Synch, weakly-atomic STM, and strongly-atomic STM at four
/// cumulative optimization levels. Optimizations accumulate exactly as in
/// the figures: +JitOpts adds barrier elimination and aggregation, +DEA
/// adds dynamic escape analysis, +Whole-Prog adds NAIT and TL.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_WORKLOADS_MODES_H
#define SATM_WORKLOADS_MODES_H

#include "stm/Txn.h"
#include "workloads/Mem.h"

#include <mutex>

namespace satm {
namespace workloads {

enum class ExecMode : uint8_t {
  Synch,        ///< Lock-based critical sections; no barriers.
  Weak,         ///< STM atomic blocks; direct non-transactional accesses.
  StrongNoOpts, ///< STM + unoptimized isolation barriers.
  StrongJit,    ///< + barrier elimination + barrier aggregation (§6).
  StrongDea,    ///< + dynamic escape analysis (§4).
  StrongWhole,  ///< + whole-program NAIT/TL (§5).
};

inline constexpr ExecMode AllExecModes[] = {
    ExecMode::Synch,     ExecMode::Weak,      ExecMode::StrongNoOpts,
    ExecMode::StrongJit, ExecMode::StrongDea, ExecMode::StrongWhole,
};

inline const char *execModeName(ExecMode M) {
  switch (M) {
  case ExecMode::Synch:
    return "Synch";
  case ExecMode::Weak:
    return "Weak Atom";
  case ExecMode::StrongNoOpts:
    return "Strong NoOpts";
  case ExecMode::StrongJit:
    return "+JitOpts";
  case ExecMode::StrongDea:
    return "+DEA";
  case ExecMode::StrongWhole:
    return "+Whole-Prog";
  }
  return "?";
}

/// True for the mode that uses mutual exclusion instead of transactions.
inline bool usesLocks(ExecMode M) { return M == ExecMode::Synch; }

/// The non-transactional barrier plan each mode compiles to.
inline BarrierPlan planFor(ExecMode M) {
  BarrierPlan P;
  switch (M) {
  case ExecMode::Synch:
  case ExecMode::Weak:
    return P;
  case ExecMode::StrongWhole:
    P.NaitSites = true;
    [[fallthrough]];
  case ExecMode::StrongDea:
    P.Dea = true;
    [[fallthrough]];
  case ExecMode::StrongJit:
    P.ElideLocal = true;
    P.Aggregate = true;
    [[fallthrough]];
  case ExecMode::StrongNoOpts:
    P.ReadBarriers = true;
    P.WriteBarriers = true;
    return P;
  }
  return P;
}

/// Accessor for data touched inside an atomic region: transactional
/// reads/writes under the STM modes, plain accesses under Synch (whose
/// mutual exclusion makes them safe).
class RegionAccess {
public:
  explicit RegionAccess(bool UseTxn) : UseTxn(UseTxn) {}

  Word get(Object *O, uint32_t S) const {
    if (UseTxn)
      return stm::Txn::forThisThread().read(O, S);
    return O->rawLoad(S, std::memory_order_acquire);
  }
  void set(Object *O, uint32_t S, Word V) const {
    if (UseTxn)
      stm::Txn::forThisThread().write(O, S, V);
    else
      O->rawStore(S, V, std::memory_order_release);
  }
  Object *getRef(Object *O, uint32_t S) const {
    return Object::fromWord(get(O, S));
  }
  void setRef(Object *O, uint32_t S, Object *R) const {
    if (UseTxn)
      stm::Txn::forThisThread().writeRef(O, S, R);
    else
      O->rawStoreRef(S, R, std::memory_order_release);
  }

private:
  bool UseTxn;
};

/// Runs \p Body as this mode's atomic region: a global-lock critical
/// section under Synch, an eager transaction otherwise.
template <typename F>
void atomicRegion(ExecMode Mode, std::mutex &Lock, F &&Body) {
  if (usesLocks(Mode)) {
    std::lock_guard<std::mutex> Guard(Lock);
    RegionAccess A(false);
    Body(A);
    return;
  }
  stm::atomically([&] {
    RegionAccess A(true);
    Body(A);
  });
}

} // namespace workloads
} // namespace satm

#endif // SATM_WORKLOADS_MODES_H
