//===- workloads/Oo7.h - OO7 design database (Figure 19) -------*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The OO7 benchmark [59] as the paper uses it (Figure 19): "a number of
/// traversals over a synthetic database organized as a tree. Traversals
/// either lookup (read-only) or update the database ... we used root
/// locking and a mixture of 80% lookups and 20% updates." Each traversal is
/// one atomic region (or, under Synch, one critical section under the
/// single root lock — which is why the lock version does not scale).
///
//===----------------------------------------------------------------------===//

#ifndef SATM_WORKLOADS_OO7_H
#define SATM_WORKLOADS_OO7_H

#include "workloads/Modes.h"

namespace satm {
namespace workloads {

struct Oo7Result {
  double Seconds = 0;
  uint64_t Checksum = 0; ///< Mode-independent database digest.
};

struct Oo7Config {
  unsigned Fanout = 3;             ///< Assembly tree fanout.
  unsigned Depth = 4;              ///< Assembly tree depth.
  unsigned CompositesPerBase = 3;  ///< Composite parts per base assembly.
  unsigned PartsPerComposite = 12; ///< Atomic parts per composite.
  unsigned TraversalsPerThread = 120;
  unsigned UpdatePercent = 20;
};

/// Runs OO7 with \p Threads workers under \p Mode.
Oo7Result runOo7(ExecMode Mode, unsigned Threads, const Oo7Config &C = {});

} // namespace workloads
} // namespace satm

#endif // SATM_WORKLOADS_OO7_H
