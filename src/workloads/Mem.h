//===- workloads/Mem.h - Barrier-plan access layer -------------*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The access layer the native benchmark workloads use. A BarrierPlan
/// stands for what the paper's JIT + analyses decide for a compilation of
/// the workload:
///
///   - ReadBarriers / WriteBarriers: which non-transactional accesses get
///     Figure 9/10 isolation barriers (Figures 15/16/17 sweep these).
///   - ElideLocal: §6 "Barrier Elim" — sites the intraprocedural escape
///     analysis or immutability rules prove barrier-free. Workload code
///     marks those sites by calling the *Local variants.
///   - Aggregate: §6 barrier aggregation — workloads wrap the hot
///     multi-access regions the JIT would aggregate in withObject().
///   - Dea: §4 dynamic escape analysis — combined with objects born
///     Private, the barriers take the Figure 10 fast paths. The caller
///     must install stm::Config::DeaEnabled for the run (see planScope).
///   - NaitAll: §5 NAIT verdict for an entirely non-transactional program:
///     every barrier is removed ("for non-transactional programs NAIT
///     removes all the barriers").
///
//===----------------------------------------------------------------------===//

#ifndef SATM_WORKLOADS_MEM_H
#define SATM_WORKLOADS_MEM_H

#include "rt/Heap.h"
#include "stm/Barriers.h"
#include "stm/Config.h"

namespace satm {
namespace workloads {

using rt::BirthState;
using rt::Object;
using stm::Word;

/// What the compiler decided about this workload's barriers.
struct BarrierPlan {
  bool ReadBarriers = false;
  bool WriteBarriers = false;
  bool ElideLocal = false;
  bool Aggregate = false;
  bool Dea = false;
  bool NaitAll = false;
  /// §5 whole-program NAIT for *transactional* workloads: only the sites
  /// the analysis proves never-accessed-in-transaction (workloads mark
  /// them with the *Nait accessor variants) lose their barriers.
  bool NaitSites = false;

  /// No barriers at all: the timing denominator.
  static BarrierPlan none() { return {}; }
  /// Unoptimized strong atomicity: barrier on every access.
  static BarrierPlan noOpts(bool Reads = true, bool Writes = true) {
    BarrierPlan P;
    P.ReadBarriers = Reads;
    P.WriteBarriers = Writes;
    return P;
  }

  bool anyBarriers() const {
    return (ReadBarriers || WriteBarriers) && !NaitAll;
  }
};

/// Installs the runtime half of a plan (DEA flag) for a scope.
class PlanScope {
public:
  explicit PlanScope(const BarrierPlan &P) : Saved(stm::config()) {
    stm::config().DeaEnabled = P.Dea;
  }
  ~PlanScope() { stm::config() = Saved; }
  PlanScope(const PlanScope &) = delete;
  PlanScope &operator=(const PlanScope &) = delete;

private:
  stm::Config Saved;
};

/// Plan-dispatched non-transactional memory accessor.
class Mem {
public:
  explicit Mem(const BarrierPlan &P) : Plan(P) {}

  const BarrierPlan &plan() const { return Plan; }

  /// Birth state for workload allocations under this plan.
  BirthState birth() const {
    return Plan.Dea ? BirthState::Private : BirthState::Shared;
  }

  Word load(const Object *O, uint32_t S) const {
    if (Plan.ReadBarriers && !Plan.NaitAll)
      return stm::ntRead(O, S);
    return O->rawLoad(S, std::memory_order_acquire);
  }

  void store(Object *O, uint32_t S, Word V) const {
    if (Plan.WriteBarriers && !Plan.NaitAll) {
      stm::ntWrite(O, S, V);
      return;
    }
    O->rawStore(S, V, std::memory_order_release);
  }

  Object *loadRef(const Object *O, uint32_t S) const {
    return Object::fromWord(load(O, S));
  }

  void storeRef(Object *O, uint32_t S, Object *Referee) const {
    if (Plan.WriteBarriers && !Plan.NaitAll) {
      stm::ntWriteRef(O, S, Referee);
      return;
    }
    // Barrier removed: keep the §4 publication step under DEA (see
    // DESIGN.md) so the private-bit invariant holds.
    if (Plan.Dea && Referee &&
        !stm::TxRecord::isPrivate(
            O->txRecord().load(std::memory_order_acquire)))
      stm::publishObject(Referee);
    O->rawStoreRef(S, Referee, std::memory_order_release);
  }

  //===--------------------------------------------------------------------===
  // Sites the §6 JIT analyses (intraprocedural escape, immutability)
  // prove barrier-free. Real barriers unless the plan enables ElideLocal.
  //===--------------------------------------------------------------------===

  Word loadLocal(const Object *O, uint32_t S) const {
    if (Plan.ElideLocal)
      return O->rawLoad(S, std::memory_order_acquire);
    return load(O, S);
  }

  void storeLocal(Object *O, uint32_t S, Word V) const {
    if (Plan.ElideLocal) {
      O->rawStore(S, V, std::memory_order_release);
      return;
    }
    store(O, S, V);
  }

  Object *loadRefLocal(const Object *O, uint32_t S) const {
    return Object::fromWord(loadLocal(O, S));
  }

  //===--------------------------------------------------------------------===
  // Sites the §5 whole-program NAIT analysis proves are never accessed in
  // any transaction (e.g. read-only tables, handed-off objects). Real
  // barriers unless the plan enables NaitSites.
  //===--------------------------------------------------------------------===

  Word loadNait(const Object *O, uint32_t S) const {
    if (Plan.NaitSites)
      return O->rawLoad(S, std::memory_order_acquire);
    return load(O, S);
  }

  void storeNait(Object *O, uint32_t S, Word V) const {
    if (Plan.NaitSites) {
      O->rawStore(S, V, std::memory_order_release);
      return;
    }
    store(O, S, V);
  }

  Object *loadRefNait(const Object *O, uint32_t S) const {
    return Object::fromWord(loadNait(O, S));
  }

  //===--------------------------------------------------------------------===
  // Aggregation (§6): hot regions accessing one object repeatedly.
  //===--------------------------------------------------------------------===

  /// Accessor handed to withObject bodies: routes through the aggregated
  /// barrier when one is active, else through the plain plan accessors.
  class ObjAccess {
  public:
    ObjAccess(const Mem &M, Object *O, stm::AggregatedWriter *W)
        : M(M), O(O), W(W) {}
    Word get(uint32_t S) const { return W ? W->load(S) : M.load(O, S); }
    void set(uint32_t S, Word V) const {
      if (W)
        W->store(S, V);
      else
        M.store(O, S, V);
    }
    Object *getRef(uint32_t S) const {
      return Object::fromWord(get(S));
    }
    void setRef(uint32_t S, Object *R) const {
      if (W)
        W->storeRef(S, R);
      else
        M.storeRef(O, S, R);
    }

  private:
    const Mem &M;
    Object *O;
    stm::AggregatedWriter *W;
  };

  /// Runs \p Body with accesses to \p O aggregated under one barrier when
  /// the plan says so (the Figure 14 codegen), else with per-access
  /// barriers. \p Body must touch only \p O through the accessor and obey
  /// the §6 constraints (no calls into shared memory, no other objects).
  /// For groups containing stores: aggregation replaces the write
  /// barriers' acquires, so it only applies when write barriers are on.
  template <typename F> void withObject(Object *O, F &&Body) const {
    if (Plan.Aggregate && Plan.WriteBarriers && !Plan.NaitAll) {
      stm::AggregatedWriter W(O);
      Body(ObjAccess(*this, O, &W));
      return;
    }
    Body(ObjAccess(*this, O, nullptr));
  }

  /// withObject for load-only groups: one exclusive acquire replaces K
  /// read barriers (profitable for K >= 2) — but only when read barriers
  /// exist to replace; a JIT never aggregates unbarriered accesses.
  template <typename F> void withObjectReadOnly(Object *O, F &&Body) const {
    if (Plan.Aggregate && Plan.ReadBarriers && !Plan.NaitAll) {
      stm::AggregatedWriter W(O);
      Body(ObjAccess(*this, O, &W));
      return;
    }
    Body(ObjAccess(*this, O, nullptr));
  }

private:
  BarrierPlan Plan;
};

} // namespace workloads
} // namespace satm

#endif // SATM_WORKLOADS_MEM_H
