//===- workloads/Jbb.h - JBB-style order processing (Figure 20) *- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A SpecJBB-style 3-tier order-processing emulation (Figure 20): one
/// warehouse per worker thread, a TPC-C-like transaction mix (new-order /
/// payment / order-status) executed as atomic regions against the
/// warehouse's stock, district and order tables. Order objects are
/// constructed non-transactionally (thread-private until the atomic region
/// files them — the DEA path) and per-thread report counters exercise the
/// NAIT-removable class.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_WORKLOADS_JBB_H
#define SATM_WORKLOADS_JBB_H

#include "workloads/Modes.h"

namespace satm {
namespace workloads {

struct JbbResult {
  double Seconds = 0;
  uint64_t Throughput = 0; ///< Operations completed (all threads).
  uint64_t Checksum = 0;   ///< Mode-independent digest.
};

struct JbbConfig {
  unsigned ItemsPerWarehouse = 512;
  unsigned Districts = 10;
  unsigned OpsPerThread = 4000;
};

/// Runs the workload with one warehouse per thread under \p Mode.
JbbResult runJbb(ExecMode Mode, unsigned Threads, const JbbConfig &C = {});

} // namespace workloads
} // namespace satm

#endif // SATM_WORKLOADS_JBB_H
