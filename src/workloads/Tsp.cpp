//===- workloads/Tsp.cpp - Branch-and-bound TSP (Figure 18) --------------===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "workloads/Tsp.h"

#include "support/Rng.h"
#include "support/Stopwatch.h"

#include <thread>
#include <vector>

using namespace satm;
using namespace satm::rt;
using namespace satm::workloads;

namespace {

const TypeDescriptor IntArrayType("int[]", TypeKind::IntArray);
const TypeDescriptor CellType("Cell", 1, {});

struct TspShared {
  Heap H;
  Object *Dist = nullptr;    ///< N*N distances; NAIT-class site.
  Object *Best = nullptr;    ///< Best tour length so far.
  Object *WorkCtr = nullptr; ///< Next work-unit index.
  std::mutex Lock;           ///< Synch-mode critical sections.
  unsigned N = 0;
  uint64_t MinEdge = ~0ull;
  std::vector<std::pair<unsigned, unsigned>> Units; ///< (second, third).
};

class TspWorker {
public:
  TspWorker(TspShared &S, const Mem &M, ExecMode Mode)
      : S(S), M(M), Mode(Mode) {
    // Thread-private scratch: the DEA candidates.
    Path = S.H.allocateArray(&IntArrayType, S.N, M.birth());
    Visited = S.H.allocateArray(&IntArrayType, S.N, M.birth());
  }

  void run() {
    for (;;) {
      uint64_t Unit = claimUnit();
      if (Unit >= S.Units.size())
        return;
      auto [B, C] = S.Units[Unit];
      if (B == C)
        continue;
      // Tour starts 0 -> B -> C. The scratch arrays hang off the worker
      // and are never accessed transactionally: the §5.4 tsp case — TL
      // cannot prove them local (reachable from two threads), NAIT
      // removes their barriers; DEA recovers them at runtime meanwhile.
      for (unsigned I = 0; I < S.N; ++I)
        M.storeNait(Visited, I, 0);
      M.storeNait(Visited, 0, 1);
      M.storeNait(Visited, B, 1);
      M.storeNait(Visited, C, 1);
      M.storeNait(Path, 0, 0);
      M.storeNait(Path, 1, B);
      M.storeNait(Path, 2, C);
      dfs(3, dist(0, B) + dist(B, C), C);
    }
  }

private:
  uint64_t claimUnit() {
    uint64_t Unit = 0;
    atomicRegion(Mode, S.Lock, [&](const RegionAccess &A) {
      Unit = A.get(S.WorkCtr, 0);
      A.set(S.WorkCtr, 0, Unit + 1);
    });
    return Unit;
  }

  uint64_t dist(unsigned From, unsigned To) const {
    return M.loadNait(S.Dist, From * S.N + To);
  }

  /// Non-transactional read of the shared bound: the strong-atomicity hot
  /// spot (always barriered; the bound is written transactionally).
  uint64_t bestSoFar() const { return M.load(S.Best, 0); }

  void tryUpdateBest(uint64_t Length) {
    atomicRegion(Mode, S.Lock, [&](const RegionAccess &A) {
      if (Length < A.get(S.Best, 0))
        A.set(S.Best, 0, Length);
    });
  }

  void dfs(unsigned Depth, uint64_t Length, unsigned Last) {
    if (Length + (S.N - Depth + 1) * S.MinEdge >= bestSoFar())
      return; // Bound prune.
    if (Depth == S.N) {
      tryUpdateBest(Length + dist(Last, 0));
      return;
    }
    for (unsigned City = 1; City < S.N; ++City) {
      if (M.loadNait(Visited, City))
        continue;
      M.storeNait(Visited, City, 1);
      M.storeNait(Path, Depth, City);
      dfs(Depth + 1, Length + dist(Last, City), City);
      M.storeNait(Visited, City, 0);
    }
  }

  TspShared &S;
  const Mem &M;
  ExecMode Mode;
  Object *Path;
  Object *Visited;
};

} // namespace

TspResult satm::workloads::runTsp(ExecMode Mode, unsigned Threads,
                                  unsigned NumCities, uint64_t Seed) {
  BarrierPlan Plan = planFor(Mode);
  PlanScope Scope(Plan);
  Mem M(Plan);

  TspShared S;
  S.N = NumCities;
  // The instance tables are built before workers exist and are shared:
  // allocate them public.
  S.Dist = S.H.allocateArray(&IntArrayType, NumCities * NumCities,
                             BirthState::Shared);
  S.Best = S.H.allocate(&CellType, BirthState::Shared);
  S.WorkCtr = S.H.allocate(&CellType, BirthState::Shared);
  Rng R(Seed);
  for (unsigned I = 0; I < NumCities; ++I)
    for (unsigned J = 0; J < NumCities; ++J) {
      uint64_t D = I == J ? 0 : 10 + R.nextBelow(90);
      S.Dist->rawStore(I * NumCities + J, D);
      if (I != J && D < S.MinEdge)
        S.MinEdge = D;
    }
  S.Best->rawStore(0, ~0ull >> 1);
  for (unsigned B = 1; B < NumCities; ++B)
    for (unsigned C = 1; C < NumCities; ++C)
      if (B != C)
        S.Units.push_back({B, C});

  Stopwatch Timer;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&S, &M, Mode] { TspWorker(S, M, Mode).run(); });
  for (auto &W : Workers)
    W.join();

  TspResult Result;
  Result.Seconds = Timer.seconds();
  Result.BestTour = S.Best->rawLoad(0);
  return Result;
}
