//===- workloads/Jvm98.cpp - Non-transactional workload suite ------------===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "workloads/Jvm98.h"

#include "support/Rng.h"

#include <algorithm>
#include <mutex>

using namespace satm;
using namespace satm::rt;
using namespace satm::workloads;

namespace {

const TypeDescriptor IntArrayType("int[]", TypeKind::IntArray);
const TypeDescriptor RefArrayType("ref[]", TypeKind::RefArray);

Object *newIntArray(Heap &H, const Mem &M, uint32_t N) {
  return H.allocateArray(&IntArrayType, N, M.birth());
}

//===----------------------------------------------------------------------===
// compress: LZW with open-addressed dictionary over int arrays.
//===----------------------------------------------------------------------===

uint64_t runCompress(const Mem &M, uint32_t Scale) {
  Heap H;
  const uint32_t InputLen = 64 * 1024 * Scale;
  Object *Input = newIntArray(H, M, InputLen);
  // Deterministic skewed "text".
  Rng R(42);
  for (uint32_t I = 0; I < InputLen; ++I)
    M.storeLocal(Input, I, (R.next() % 16 < 12) ? R.nextBelow(8)
                                                : R.nextBelow(64));

  const uint32_t DictCap = 1 << 15;
  Object *DictKey = newIntArray(H, M, DictCap);  // (prefix<<8)|sym + 1.
  Object *DictCode = newIntArray(H, M, DictCap);
  Object *Output = newIntArray(H, M, InputLen + 1);
  for (uint32_t I = 0; I < DictCap; ++I)
    M.store(DictKey, I, 0);

  uint32_t NextCode = 256;
  uint32_t OutPos = 0;
  uint64_t Prefix = M.load(Input, 0);
  // The input is consumed in blocks of 8: the aggregation site the paper
  // highlights for compress ("aggregating multiple accesses to an array").
  Word Block[8];
  for (uint32_t Base = 1; Base < InputLen; Base += 8) {
    uint32_t Count = std::min<uint32_t>(8, InputLen - Base);
    M.withObjectReadOnly(Input, [&](const Mem::ObjAccess &A) {
      for (uint32_t K = 0; K < Count; ++K)
        Block[K] = A.get(Base + K);
    });
    for (uint32_t K = 0; K < Count; ++K) {
    uint64_t Sym = Block[K];
    uint64_t Key = (Prefix << 8 | Sym) + 1;
    uint32_t Slot = static_cast<uint32_t>(Key * 2654435761u) & (DictCap - 1);
    uint64_t Found = 0;
    // Probe the dictionary: two reads per probe to the same pair of
    // arrays — a natural aggregation site for the key array.
    for (;;) {
      uint64_t Probe = M.load(DictKey, Slot);
      if (Probe == Key) {
        Found = M.load(DictCode, Slot) + 1;
        break;
      }
      if (Probe == 0)
        break;
      Slot = (Slot + 1) & (DictCap - 1);
    }
    if (Found) {
      Prefix = Found - 1;
      continue;
    }
    M.store(Output, OutPos, Prefix);
    ++OutPos;
    if (NextCode < (1u << 20)) {
      M.store(DictKey, Slot, Key);
      M.store(DictCode, Slot, NextCode++);
    }
    Prefix = Sym;
    }
  }
  M.store(Output, OutPos++, Prefix);

  uint64_t Sum = 0;
  for (uint32_t I = 0; I < OutPos; ++I)
    Sum = Sum * 31 + M.load(Output, I);
  return Sum + OutPos;
}

//===----------------------------------------------------------------------===
// jess: forward-chaining rule matcher over fact objects.
//===----------------------------------------------------------------------===

// Fact layout: kind, a, b, derivedFlag.
const TypeDescriptor FactType("Fact", 4, {});

uint64_t runJess(const Mem &M, uint32_t Scale) {
  Heap H;
  const uint32_t NumFacts = 1200 * Scale;
  Object *Facts = H.allocateArray(&RefArrayType, NumFacts * 2, M.birth());
  Rng R(7);
  uint32_t Count = 0;
  for (uint32_t I = 0; I < NumFacts; ++I) {
    Object *F = H.allocate(&FactType, M.birth());
    M.withObject(F, [&](const Mem::ObjAccess &A) {
      A.set(0, R.nextBelow(4));       // kind
      A.set(1, R.nextBelow(50));      // a
      A.set(2, R.nextBelow(50));      // b
      A.set(3, 0);
    });
    M.storeRef(Facts, Count++, F);
  }
  // Rule: for kinds k, (k, a, b) and (k, b, c) derive (k+1 mod 4, a, c),
  // bounded passes; join implemented with a bucket index on b.
  uint64_t Derived = 0;
  for (int Pass = 0; Pass < 2; ++Pass) {
    const uint32_t Buckets = 64;
    std::vector<std::vector<Object *>> Index(Buckets);
    for (uint32_t I = 0; I < Count; ++I) {
      Object *F = M.loadRef(Facts, I);
      Index[M.load(F, 1) % Buckets].push_back(F);
    }
    uint32_t Limit = Count;
    for (uint32_t I = 0; I < Limit && Count + 1 < NumFacts * 2; ++I) {
      Object *F1 = M.loadRef(Facts, I);
      uint64_t Kind = M.load(F1, 0);
      uint64_t B = M.load(F1, 2);
      for (Object *F2 : Index[B % Buckets]) {
        if (M.load(F2, 0) != Kind || M.load(F2, 1) != B)
          continue;
        if (Count + 1 >= NumFacts * 2)
          break;
        Object *NF = H.allocate(&FactType, M.birth());
        M.withObject(NF, [&](const Mem::ObjAccess &A) {
          A.set(0, (Kind + 1) % 4);
          A.set(1, M.load(F1, 1));
          A.set(2, M.load(F2, 2));
          A.set(3, 1);
        });
        M.storeRef(Facts, Count++, NF);
        ++Derived;
      }
    }
  }
  uint64_t Sum = Derived;
  for (uint32_t I = 0; I < Count; ++I) {
    Object *F = M.loadRef(Facts, I);
    Sum = Sum * 33 + M.load(F, 0) + M.load(F, 1) * 3 + M.load(F, 2) * 7;
  }
  return Sum;
}

//===----------------------------------------------------------------------===
// db: record table with sorted index, lookups and updates.
//===----------------------------------------------------------------------===

// Record layout: key, balance, touches.
const TypeDescriptor RecordType("Record", 3, {});

uint64_t runDb(const Mem &M, uint32_t Scale) {
  Heap H;
  const uint32_t NumRecords = 4000;
  const uint32_t NumOps = 30000 * Scale;
  Object *Table = H.allocateArray(&RefArrayType, NumRecords, M.birth());
  Object *KeyIndex = newIntArray(H, M, NumRecords); // sorted record keys
  for (uint32_t I = 0; I < NumRecords; ++I) {
    Object *Rec = H.allocate(&RecordType, M.birth());
    uint64_t Key = I * 7 + 13; // Already sorted by construction.
    M.withObject(Rec, [&](const Mem::ObjAccess &A) {
      A.set(0, Key);
      A.set(1, 100);
      A.set(2, 0);
    });
    M.storeRef(Table, I, Rec);
    M.store(KeyIndex, I, Key);
  }
  Rng R(99);
  uint64_t Hits = 0;
  for (uint32_t OpI = 0; OpI < NumOps; ++OpI) {
    uint64_t Key = R.nextBelow(NumRecords * 7 + 13);
    // Binary search in the index.
    uint32_t Lo = 0, Hi = NumRecords;
    while (Lo < Hi) {
      uint32_t Mid = (Lo + Hi) / 2;
      if (M.load(KeyIndex, Mid) < Key)
        Lo = Mid + 1;
      else
        Hi = Mid;
    }
    if (Lo < NumRecords && M.load(KeyIndex, Lo) == Key) {
      Object *Rec = M.loadRef(Table, Lo);
      M.withObject(Rec, [&](const Mem::ObjAccess &A) {
        A.set(1, A.get(1) + (OpI % 3 == 0 ? 5 : static_cast<Word>(-1)));
        A.set(2, A.get(2) + 1);
      });
      ++Hits;
    }
  }
  uint64_t Sum = Hits;
  for (uint32_t I = 0; I < NumRecords; ++I) {
    Object *Rec = M.loadRef(Table, I);
    Sum = Sum * 31 + M.load(Rec, 1) + M.load(Rec, 2);
  }
  return Sum;
}

//===----------------------------------------------------------------------===
// javac: tokenizer + expression tree builder (allocation heavy).
//===----------------------------------------------------------------------===

// Node layout: kind, value, left(ref), right(ref).
const TypeDescriptor NodeType("Node", 4, {2, 3});

uint64_t runJavac(const Mem &M, uint32_t Scale) {
  Heap H;
  Rng R(5);
  const uint32_t NumUnits = 600 * Scale;
  uint64_t Sum = 0;
  for (uint32_t Unit = 0; Unit < NumUnits; ++Unit) {
    // Synthesize a token stream: a random fully-parenthesized expression.
    const uint32_t NumLeaves = 64;
    std::vector<Object *> Stack;
    for (uint32_t L = 0; L < NumLeaves; ++L) {
      Object *Leaf = H.allocate(&NodeType, M.birth());
      M.storeLocal(Leaf, 0, 0);
      M.storeLocal(Leaf, 1, R.nextBelow(1000));
      Stack.push_back(Leaf);
      // Reduce randomly: combine top two into an operator node.
      while (Stack.size() >= 2 && R.nextPercent(60)) {
        Object *Rhs = Stack.back();
        Stack.pop_back();
        Object *Lhs = Stack.back();
        Stack.pop_back();
        Object *Op = H.allocate(&NodeType, M.birth());
        M.withObject(Op, [&](const Mem::ObjAccess &A) {
          A.set(0, 1 + R.nextBelow(3));
          A.setRef(2, Lhs);
          A.setRef(3, Rhs);
        });
        Stack.push_back(Op);
      }
    }
    while (Stack.size() >= 2) {
      Object *Rhs = Stack.back();
      Stack.pop_back();
      Object *Lhs = Stack.back();
      Stack.pop_back();
      Object *Op = H.allocate(&NodeType, M.birth());
      M.withObject(Op, [&](const Mem::ObjAccess &A) {
        A.set(0, 1);
        A.setRef(2, Lhs);
        A.setRef(3, Rhs);
      });
      Stack.push_back(Op);
    }
    // "Constant fold" — evaluate the tree iteratively.
    std::vector<Object *> Walk{Stack[0]};
    uint64_t Folded = 0;
    while (!Walk.empty()) {
      Object *N = Walk.back();
      Walk.pop_back();
      uint64_t Kind = M.load(N, 0);
      if (Kind == 0) {
        Folded += M.load(N, 1);
        continue;
      }
      Folded += Kind;
      if (Object *L = M.loadRef(N, 2))
        Walk.push_back(L);
      if (Object *Rt = M.loadRef(N, 3))
        Walk.push_back(Rt);
    }
    Sum = Sum * 17 + Folded;
  }
  return Sum;
}

//===----------------------------------------------------------------------===
// mpegaudio: filter bank over static (published, shared) arrays. This is
// the benchmark where DEA cannot remove barrier costs (§7): the data is
// static, hence public, so every access pays the full barrier.
//===----------------------------------------------------------------------===

struct MpegStatics {
  Object *Coeffs;
  Object *Window;
  Object *Buffer;
};

/// Static arrays live in the global heap, always Shared (public),
/// mirroring Java statics initialized by a class initializer.
MpegStatics &mpegStatics() {
  static MpegStatics S = [] {
    MpegStatics St;
    Heap &H = Heap::global();
    St.Coeffs = H.allocateArray(&IntArrayType, 512, BirthState::Shared);
    St.Window = H.allocateArray(&IntArrayType, 512, BirthState::Shared);
    St.Buffer = H.allocateArray(&IntArrayType, 2048, BirthState::Shared);
    Rng R(3);
    for (uint32_t I = 0; I < 512; ++I) {
      St.Coeffs->rawStore(I, R.nextBelow(255) + 1);
      St.Window->rawStore(I, R.nextBelow(127) + 1);
    }
    return St;
  }();
  return S;
}

/// One subband synthesis step: blocked coefficient/window fetches (the
/// per-object aggregation sites — one acquire per 16 reads instead of 16
/// barriers) followed by the multiply-accumulate. Kept out of line so the
/// frame loop stays small and the optimizer keeps the fetch loops tight.
__attribute__((noinline)) uint64_t mpegSubband(const Mem &M,
                                               const MpegStatics &St,
                                               uint32_t Sb) {
  Word CBuf[16], WBuf[16];
  if (M.plan().Aggregate && M.plan().ReadBarriers && !M.plan().NaitAll) {
    // Aggregated fetch: one acquire per 16 reads instead of 16 barriers.
    {
      stm::AggregatedWriter W(St.Coeffs);
      for (uint32_t K = 0; K < 16; ++K)
        CBuf[K] = W.load((Sb * 16 + K) & 511);
    }
    {
      stm::AggregatedWriter W(St.Window);
      for (uint32_t K = 0; K < 16; ++K)
        WBuf[K] = W.load((Sb + K * 32) & 511);
    }
  } else {
    // Copy the accessor: a by-value Mem is provably unmodified, so the
    // compiler may hoist the plan-flag loads out of the loop (through a
    // reference it must re-load them after every acquire load).
    const Mem LocalM = M;
    for (uint32_t K = 0; K < 16; ++K)
      CBuf[K] = LocalM.load(St.Coeffs, (Sb * 16 + K) & 511);
    for (uint32_t K = 0; K < 16; ++K)
      WBuf[K] = LocalM.load(St.Window, (Sb + K * 32) & 511);
  }
  uint64_t Acc = 0;
  for (uint32_t K = 0; K < 16; ++K)
    Acc += CBuf[K] * WBuf[K];
  return Acc;
}

uint64_t runMpegaudio(const Mem &M, uint32_t Scale) {
  MpegStatics &St = mpegStatics();
  const uint32_t Frames = 1500 * Scale;
  uint64_t Sum = 0;
  // Reset the static output buffer so the checksum is run-independent.
  for (uint32_t I = 0; I < 2048; ++I)
    M.store(St.Buffer, I, 0);
  for (uint32_t Frame = 0; Frame < Frames; ++Frame) {
    // Subband synthesis-like loop: multiply-accumulate over statics and
    // shift the static buffer.
    for (uint32_t Sb = 0; Sb < 32; ++Sb) {
      uint64_t Acc = mpegSubband(M, St, Sb);
      M.store(St.Buffer, (Frame * 32 + Sb) & 2047, Acc & 0xffff);
    }
    Sum += M.load(St.Buffer, (Frame * 7) & 2047);
  }
  return Sum;
}

//===----------------------------------------------------------------------===
// mtrt: small sphere-scene ray tracer with per-ray temporaries.
//===----------------------------------------------------------------------===

// Sphere layout: cx, cy, cz, r2, color.
const TypeDescriptor SphereType("Sphere", 5, {});
// Ray layout: ox, oy, oz, dx, dy, dz (fixed-point *1024).
const TypeDescriptor RayType("Ray", 6, {});

uint64_t runMtrt(const Mem &M, uint32_t Scale) {
  Heap H;
  const int NumSpheres = 16;
  Object *Scene = H.allocateArray(&RefArrayType, NumSpheres, M.birth());
  Rng R(11);
  for (int I = 0; I < NumSpheres; ++I) {
    Object *S = H.allocate(&SphereType, M.birth());
    M.withObject(S, [&](const Mem::ObjAccess &A) {
      A.set(0, R.nextBelow(2048));
      A.set(1, R.nextBelow(2048));
      A.set(2, 1024 + R.nextBelow(4096));
      A.set(3, (64 + R.nextBelow(256)) * (64 + R.nextBelow(256)));
      A.set(4, R.nextBelow(256));
    });
    M.storeRef(Scene, I, S);
  }
  const uint32_t W = 64, Ht = 48;
  const uint32_t Passes = 2 * Scale;
  Object *Image = newIntArray(H, M, W * Ht);
  for (uint32_t Pass = 0; Pass < Passes; ++Pass) {
    for (uint32_t Y = 0; Y < Ht; ++Y) {
      for (uint32_t X = 0; X < W; ++X) {
        // Fresh private ray per pixel — the DEA fast-path driver.
        Object *Ray = H.allocate(&RayType, M.birth());
        M.storeLocal(Ray, 0, X * 32);
        M.storeLocal(Ray, 1, Y * 32);
        M.storeLocal(Ray, 2, 0);
        M.storeLocal(Ray, 3, 3);
        M.storeLocal(Ray, 4, 5);
        M.storeLocal(Ray, 5, 1024);
        uint64_t Best = ~0ull;
        uint64_t Color = 0;
        for (int S = 0; S < NumSpheres; ++S) {
          Object *Sp = M.loadRef(Scene, S);
          // March the ray in fixed steps against the sphere bound.
          int64_t Ox = static_cast<int64_t>(M.loadLocal(Ray, 0));
          int64_t Oy = static_cast<int64_t>(M.loadLocal(Ray, 1));
          int64_t Oz = static_cast<int64_t>(M.loadLocal(Ray, 2));
          int64_t Cx = static_cast<int64_t>(M.load(Sp, 0));
          int64_t Cy = static_cast<int64_t>(M.load(Sp, 1));
          int64_t Cz = static_cast<int64_t>(M.load(Sp, 2));
          int64_t R2 = static_cast<int64_t>(M.load(Sp, 3));
          for (int T = 0; T < 8; ++T) {
            int64_t Px = Ox + T * 96, Py = Oy + T * 160, Pz = Oz + T * 512;
            int64_t D2 = (Px - Cx) * (Px - Cx) + (Py - Cy) * (Py - Cy) +
                         (Pz - Cz) * (Pz - Cz);
            if (D2 < R2 * 64 && static_cast<uint64_t>(D2) < Best) {
              Best = D2;
              Color = M.load(Sp, 4) + T;
            }
          }
        }
        M.store(Image, Y * W + X, Color);
      }
    }
  }
  uint64_t Sum = 0;
  for (uint32_t I = 0; I < W * Ht; ++I)
    Sum = Sum * 31 + M.load(Image, I);
  return Sum;
}

//===----------------------------------------------------------------------===
// jack: table-driven scanner generated over a small DFA.
//===----------------------------------------------------------------------===

uint64_t runJack(const Mem &M, uint32_t Scale) {
  Heap H;
  const uint32_t NumStates = 32, NumSyms = 16;
  Object *Delta = newIntArray(H, M, NumStates * NumSyms);
  Object *Accept = newIntArray(H, M, NumStates);
  Rng R(17);
  for (uint32_t S = 0; S < NumStates; ++S) {
    for (uint32_t C = 0; C < NumSyms; ++C)
      M.store(Delta, S * NumSyms + C, R.nextBelow(NumStates));
    M.store(Accept, S, R.nextPercent(25));
  }
  const uint32_t InputLen = 48 * 1024 * Scale;
  Object *Input = newIntArray(H, M, InputLen);
  for (uint32_t I = 0; I < InputLen; ++I)
    M.storeLocal(Input, I, R.nextBelow(NumSyms));
  Object *TokenOut = newIntArray(H, M, InputLen);

  uint32_t State = 0;
  uint32_t Tokens = 0;
  for (uint32_t I = 0; I < InputLen; ++I) {
    uint64_t Sym = M.load(Input, I);
    State = static_cast<uint32_t>(
        M.load(Delta, State * NumSyms + static_cast<uint32_t>(Sym)));
    if (M.load(Accept, State)) {
      M.store(TokenOut, Tokens, (static_cast<uint64_t>(State) << 8) | Sym);
      ++Tokens;
      State = 0;
    }
  }
  uint64_t Sum = Tokens;
  for (uint32_t I = 0; I < Tokens; ++I)
    Sum = Sum * 131 + M.load(TokenOut, I);
  return Sum;
}

} // namespace

const std::vector<Jvm98Workload> &satm::workloads::jvm98Suite() {
  static const std::vector<Jvm98Workload> Suite = {
      {"compress", runCompress}, {"jess", runJess}, {"db", runDb},
      {"javac", runJavac},       {"mpegaudio", runMpegaudio},
      {"mtrt", runMtrt},         {"jack", runJack},
  };
  return Suite;
}
