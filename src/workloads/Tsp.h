//===- workloads/Tsp.h - Branch-and-bound TSP (Figure 18) ------*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel branch-and-bound traveling-salesman solver after [57], the
/// paper's Figure 18 workload: "threads perform their searches
/// independently, but share partially completed work and the
/// best-answer-so-far via shared memory."
///
/// Sharing structure (and its barrier classes under strong atomicity):
///  - distance matrix: shared, read-only, never accessed transactionally —
///    a NAIT-removable site, hot in the inner loop;
///  - best-so-far bound: read non-transactionally on every prune check
///    (barrier never removable: it is written inside transactions) and
///    updated inside an atomic block;
///  - work-unit counter: claimed inside atomic blocks;
///  - per-thread path/visited arrays: thread-private — the DEA fast path,
///    with aggregated barriers on the multi-access extend step.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_WORKLOADS_TSP_H
#define SATM_WORKLOADS_TSP_H

#include "workloads/Modes.h"

namespace satm {
namespace workloads {

struct TspResult {
  double Seconds = 0;
  uint64_t BestTour = 0; ///< Optimal tour length — mode-independent.
};

/// Solves a deterministic random instance with \p NumCities cities using
/// \p Threads worker threads under \p Mode.
TspResult runTsp(ExecMode Mode, unsigned Threads, unsigned NumCities = 11,
                 uint64_t Seed = 2026);

} // namespace workloads
} // namespace satm

#endif // SATM_WORKLOADS_TSP_H
