//===- workloads/Oo7.cpp - OO7 design database (Figure 19) ---------------===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "workloads/Oo7.h"

#include "support/Rng.h"
#include "support/Stopwatch.h"

#include <thread>
#include <vector>

using namespace satm;
using namespace satm::rt;
using namespace satm::workloads;

namespace {

// Assembly: kind (0 = complex, 1 = base), children ref-array, composites
// ref-array.
const TypeDescriptor AssemblyType("Assembly", 3, {1, 2});
// CompositePart: parts ref-array, buildDate.
const TypeDescriptor CompositeType("CompositePart", 2, {0});
// AtomicPart: x, y, docId.
const TypeDescriptor PartType("AtomicPart", 3, {});
// Per-traversal private scratch: visited count, sum, updates done.
const TypeDescriptor ScratchType("Scratch", 3, {});
const TypeDescriptor RefArrayType("ref[]", TypeKind::RefArray);

struct Oo7Db {
  Heap H;
  Object *Root = nullptr;
  std::mutex RootLock;
  Oo7Config Cfg;
};

Object *buildAssembly(Oo7Db &Db, Rng &R, unsigned Level) {
  const Oo7Config &C = Db.Cfg;
  // The database is built up-front and globally visible: public birth.
  Object *A = Db.H.allocate(&AssemblyType, BirthState::Shared);
  if (Level + 1 >= C.Depth) {
    A->rawStore(0, 1); // Base assembly.
    Object *Comps =
        Db.H.allocateArray(&RefArrayType, C.CompositesPerBase,
                           BirthState::Shared);
    for (unsigned I = 0; I < C.CompositesPerBase; ++I) {
      Object *Comp = Db.H.allocate(&CompositeType, BirthState::Shared);
      Object *Parts = Db.H.allocateArray(&RefArrayType, C.PartsPerComposite,
                                         BirthState::Shared);
      for (unsigned P = 0; P < C.PartsPerComposite; ++P) {
        Object *Part = Db.H.allocate(&PartType, BirthState::Shared);
        Part->rawStore(0, R.nextBelow(1000));
        Part->rawStore(1, R.nextBelow(1000));
        Part->rawStore(2, P);
        Parts->rawStoreRef(P, Part);
      }
      Comp->rawStoreRef(0, Parts);
      Comp->rawStore(1, R.nextBelow(365));
      Comps->rawStoreRef(I, Comp);
    }
    A->rawStoreRef(2, Comps);
    return A;
  }
  A->rawStore(0, 0);
  Object *Children =
      Db.H.allocateArray(&RefArrayType, C.Fanout, BirthState::Shared);
  for (unsigned I = 0; I < C.Fanout; ++I)
    Children->rawStoreRef(I, buildAssembly(Db, R, Level + 1));
  A->rawStoreRef(1, Children);
  return A;
}

/// One root-granularity traversal: the whole walk is a single atomic
/// region (or one critical section under the root lock).
uint64_t traverse(Oo7Db &Db, ExecMode Mode, bool Update, uint64_t Stamp) {
  uint64_t Sum = 0;
  atomicRegion(Mode, Db.RootLock, [&](const RegionAccess &A) {
    Sum = 0; // Re-executed transactions restart the accumulation.
    std::vector<Object *> Stack{Db.Root};
    while (!Stack.empty()) {
      Object *Node = Stack.back();
      Stack.pop_back();
      if (A.get(Node, 0) == 0) { // Complex assembly.
        Object *Children = A.getRef(Node, 1);
        for (uint32_t I = 0; I < Children->slotCount(); ++I)
          Stack.push_back(A.getRef(Children, I));
        continue;
      }
      Object *Comps = A.getRef(Node, 2);
      for (uint32_t CI = 0; CI < Comps->slotCount(); ++CI) {
        Object *Comp = A.getRef(Comps, CI);
        Object *Parts = A.getRef(Comp, 0);
        for (uint32_t P = 0; P < Parts->slotCount(); ++P) {
          Object *Part = A.getRef(Parts, P);
          if (Update) {
            A.set(Part, 1, A.get(Part, 1) + 1);
            A.set(Part, 2, Stamp);
          } else {
            Sum += A.get(Part, 0) + A.get(Part, 1);
          }
        }
      }
    }
  });
  return Sum;
}

void worker(Oo7Db &Db, ExecMode Mode, const Mem &M, unsigned Tid,
            std::atomic<uint64_t> &Digest) {
  Rng R(1000 + Tid);
  // Thread-private running log of traversal results: non-transactional
  // work that strong atomicity must barrier (DEA/JIT recover it).
  Object *Scratch = Db.H.allocate(&ScratchType, M.birth());
  M.storeLocal(Scratch, 0, 0);
  M.storeLocal(Scratch, 1, 0);
  M.storeLocal(Scratch, 2, 0);
  for (unsigned T = 0; T < Db.Cfg.TraversalsPerThread; ++T) {
    bool Update = R.nextPercent(Db.Cfg.UpdatePercent);
    uint64_t Sum = traverse(Db, Mode, Update, T);
    M.withObject(Scratch, [&](const Mem::ObjAccess &A) {
      A.set(0, A.get(0) + 1);
      A.set(1, A.get(1) + Sum);
      A.set(2, A.get(2) + (Update ? 1 : 0));
    });
  }
  Digest.fetch_add(M.load(Scratch, 0) + M.load(Scratch, 2));
}

} // namespace

Oo7Result satm::workloads::runOo7(ExecMode Mode, unsigned Threads,
                                  const Oo7Config &C) {
  BarrierPlan Plan = planFor(Mode);
  PlanScope Scope(Plan);
  Mem M(Plan);

  Oo7Db Db;
  Db.Cfg = C;
  Rng R(77);
  Db.Root = buildAssembly(Db, R, 0);

  std::atomic<uint64_t> Digest{0};
  Stopwatch Timer;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back(
        [&Db, Mode, &M, T, &Digest] { worker(Db, Mode, M, T, Digest); });
  for (auto &W : Workers)
    W.join();

  Oo7Result Result;
  Result.Seconds = Timer.seconds();
  // Database digest: total traversals performed (mode-independent) plus
  // a parity bit of part state.
  Result.Checksum = Digest.load();
  return Result;
}
