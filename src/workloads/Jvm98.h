//===- workloads/Jvm98.h - Non-transactional workload suite ----*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Single-threaded managed workloads standing in for SPEC JVM98 (§7,
/// Figures 15-17). Each mirrors the access character of its namesake:
///
///   compress   LZW-style compressor: tight array loops, private buffers;
///              the paper's biggest aggregation + DEA winner.
///   jess       forward-chaining rule matcher: field-read heavy object
///              scans with occasional fact allocation.
///   db         in-memory database: key lookups, field updates, index
///              maintenance over a record table.
///   javac      tokenizer + tree builder: allocation-heavy, short-lived
///              private node graphs.
///   mpegaudio  filter-bank DSP over *static* (published) arrays — the
///              workload where DEA cannot help because static data is
///              visible to multiple threads (§7).
///   mtrt       small ray tracer: vector-object math, per-pixel temps.
///   jack       lexer-generator style table-driven scanner: table reads,
///              output buffer writes.
///
/// Every workload returns a checksum that is independent of the barrier
/// plan: tests verify plan-independence; the benches time the plans.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_WORKLOADS_JVM98_H
#define SATM_WORKLOADS_JVM98_H

#include "workloads/Mem.h"

#include <cstdint>
#include <vector>

namespace satm {
namespace workloads {

/// One benchmark in the suite.
struct Jvm98Workload {
  const char *Name;
  /// Runs the workload under \p M at problem size \p Scale (1 = default
  /// test size; benches use larger). Returns a plan-independent checksum.
  uint64_t (*Run)(const Mem &M, uint32_t Scale);
};

/// The seven workloads, in the paper's order.
const std::vector<Jvm98Workload> &jvm98Suite();

} // namespace workloads
} // namespace satm

#endif // SATM_WORKLOADS_JVM98_H
