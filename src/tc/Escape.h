//===- tc/Escape.h - Intraprocedural static escape analysis ----*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JIT's intraprocedural static escape analysis (§6): "Allocated
/// objects begin thread-local and an iterative, forward dataflow analysis
/// finds that objects escape when they are assigned to escaped locations
/// ... or are reachable from method-call arguments." Accesses whose base is
/// provably a still-local fresh allocation need no isolation barrier.
///
/// The lattice maps each register to the allocation-site id it provably
/// holds a never-escaped fresh object of (or NonLocal). Any escape event —
/// a store of the reference into the heap or a static, passing it to a
/// call/spawn, or returning it — retires that allocation id everywhere.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_TC_ESCAPE_H
#define SATM_TC_ESCAPE_H

#include "tc/Ir.h"

namespace satm {
namespace tc {

/// Runs the intraprocedural escape analysis on every function of \p M and
/// clears Inst::NeedsBarrier on accesses with provably-local bases.
/// \returns the number of barriers removed.
uint64_t runIntraprocEscape(ir::Module &M);

} // namespace tc
} // namespace satm

#endif // SATM_TC_ESCAPE_H
