//===- tc/Lowering.cpp - AST to IR lowering ------------------------------===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "tc/Lowering.h"

#include <cassert>
#include <unordered_map>

using namespace satm;
using namespace satm::tc;
using namespace satm::tc::ir;

namespace {

class LoweringImpl {
public:
  explicit LoweringImpl(const Program &P) : P(P) {}

  Module run() {
    // Classes.
    for (const auto &C : P.Classes) {
      ClassInfo Info;
      Info.Name = C->Name;
      Info.NumSlots = static_cast<uint32_t>(C->Fields.size());
      for (const FieldDecl &F : C->Fields)
        if (F.Ty.isRef())
          Info.RefSlots.push_back(F.SlotIndex);
      ClassIds[C->Name] = static_cast<uint32_t>(M.Classes.size());
      M.Classes.push_back(std::move(Info));
    }
    // Statics (indexed by StaticDecl::Index, which Sema assigned densely).
    M.Statics.resize(P.Statics.size());
    for (const auto &S : P.Statics)
      M.Statics[S->Index] = {S->Name, S->Ty.isRef()};
    // Function ids first (forward calls), then bodies.
    for (const auto &F : P.Funcs) {
      FuncIds[F->Name] = static_cast<uint32_t>(M.Funcs.size());
      Function Fn;
      Fn.Name = F->Name;
      Fn.FuncId = static_cast<uint32_t>(M.Funcs.size());
      Fn.NumParams = static_cast<uint32_t>(F->Params.size());
      for (const ParamDecl &Param : F->Params)
        Fn.ParamIsRef.push_back(Param.Ty.isRef());
      Fn.RetIsRef = F->RetTy.isRef();
      M.Funcs.push_back(std::move(Fn));
    }
    for (const auto &F : P.Funcs)
      lowerFunc(*F, M.Funcs[FuncIds[F->Name]]);
    if (const FuncDecl *Main = P.findFunc("main"))
      M.MainFunc = FuncIds[Main->Name];
    M.NumAllocSites = NextAllocSite;
    return M;
  }

private:
  //===--------------------------------------------------------------------===
  // Per-function emission state.
  //===--------------------------------------------------------------------===

  RegId newReg() { return CurFunc->NumRegs++; }

  BlockId newBlock() {
    CurFunc->Blocks.emplace_back();
    return static_cast<BlockId>(CurFunc->Blocks.size() - 1);
  }

  Inst &emit(Op K, Loc Where) {
    Block &B = CurFunc->Blocks[CurBlock];
    B.Insts.push_back({});
    Inst &I = B.Insts.back();
    I.K = K;
    I.Where = Where;
    I.InAtomic = AtomicDepth > 0;
    if (!isHeapAccess(K))
      I.NeedsBarrier = false;
    return I;
  }

  void setBlock(BlockId B) { CurBlock = B; }

  /// Ends the current block with a jump to \p Target if it has no
  /// terminator yet.
  void jumpTo(BlockId Target, Loc Where) {
    Inst &I = emit(Op::Jump, Where);
    I.Index = Target;
  }

  void lowerFunc(const FuncDecl &F, Function &Fn) {
    CurFunc = &Fn;
    Fn.NumRegs = F.NumLocals;
    Fn.Blocks.clear();
    newBlock(); // Entry.
    CurBlock = 0;
    AtomicDepth = 0;
    lowerStmt(*F.Body);
    Inst &I = emit(Op::Ret, F.Where);
    I.Imm = 0;
  }

  //===--------------------------------------------------------------------===
  // Statements.
  //===--------------------------------------------------------------------===

  void lowerStmt(const Stmt &S) {
    switch (S.K) {
    case Stmt::Kind::Block:
      for (const StmtPtr &Child : static_cast<const BlockStmt &>(S).Stmts)
        lowerStmt(*Child);
      return;
    case Stmt::Kind::VarDecl: {
      const auto &V = static_cast<const VarDeclStmt &>(S);
      RegId Src = lowerExpr(*V.Init);
      Inst &I = emit(Op::Move, V.Where);
      I.Dst = V.LocalIndex;
      I.A = Src;
      return;
    }
    case Stmt::Kind::Assign:
      lowerAssign(static_cast<const AssignStmt &>(S));
      return;
    case Stmt::Kind::If: {
      const auto &I = static_cast<const IfStmt &>(S);
      RegId Cond = lowerExpr(*I.Cond);
      BlockId ThenB = newBlock();
      BlockId ElseB = I.Else ? newBlock() : 0;
      BlockId EndB = newBlock();
      Inst &Br = emit(Op::Branch, I.Where);
      Br.A = Cond;
      Br.Index = ThenB;
      Br.Index2 = I.Else ? ElseB : EndB;
      setBlock(ThenB);
      lowerStmt(*I.Then);
      jumpTo(EndB, I.Where);
      if (I.Else) {
        setBlock(ElseB);
        lowerStmt(*I.Else);
        jumpTo(EndB, I.Where);
      }
      setBlock(EndB);
      return;
    }
    case Stmt::Kind::While: {
      const auto &W = static_cast<const WhileStmt &>(S);
      BlockId HeadB = newBlock();
      jumpTo(HeadB, W.Where);
      setBlock(HeadB);
      RegId Cond = lowerExpr(*W.Cond);
      BlockId BodyB = newBlock();
      BlockId EndB = newBlock();
      Inst &Br = emit(Op::Branch, W.Where);
      Br.A = Cond;
      Br.Index = BodyB;
      Br.Index2 = EndB;
      setBlock(BodyB);
      lowerStmt(*W.Body);
      jumpTo(HeadB, W.Where);
      setBlock(EndB);
      return;
    }
    case Stmt::Kind::Return: {
      const auto &R = static_cast<const ReturnStmt &>(S);
      RegId Src = 0;
      bool HasValue = R.Value != nullptr;
      if (HasValue)
        Src = lowerExpr(*R.Value);
      Inst &I = emit(Op::Ret, R.Where);
      I.A = Src;
      I.Imm = HasValue ? 1 : 0;
      // Subsequent emission in this block would be dead; give it a block.
      setBlock(newBlock());
      return;
    }
    case Stmt::Kind::ExprStmt:
      lowerExpr(*static_cast<const ExprStmt &>(S).E);
      return;
    case Stmt::Kind::Atomic: {
      const auto &A = static_cast<const AtomicStmt &>(S);
      BlockId EndB = newBlock();
      Inst &Begin = emit(Op::AtomicBegin, A.Where);
      Begin.Index = EndB;
      ++AtomicDepth;
      lowerStmt(*A.Body);
      --AtomicDepth;
      jumpTo(EndB, A.Where);
      setBlock(EndB);
      Inst &End = emit(Op::AtomicEnd, A.Where);
      // AtomicEnd itself executes as the last action of the region.
      End.InAtomic = true;
      return;
    }
    case Stmt::Kind::Open: {
      const auto &O = static_cast<const OpenStmt &>(S);
      BlockId EndB = newBlock();
      Inst &Begin = emit(Op::OpenBegin, O.Where);
      Begin.Index = EndB;
      lowerStmt(*O.Body); // Still lexically transactional (AtomicDepth>0).
      jumpTo(EndB, O.Where);
      setBlock(EndB);
      Inst &End = emit(Op::OpenEnd, O.Where);
      End.InAtomic = true;
      return;
    }
    case Stmt::Kind::Retry:
      emit(Op::Retry, S.Where);
      return;
    case Stmt::Kind::Join: {
      const auto &J = static_cast<const JoinStmt &>(S);
      RegId H = lowerExpr(*J.Handle);
      emit(Op::Join, J.Where).A = H;
      return;
    }
    case Stmt::Kind::Print: {
      const auto &Pr = static_cast<const PrintStmt &>(S);
      RegId V = lowerExpr(*Pr.Value);
      emit(Op::Print, Pr.Where).A = V;
      return;
    }
    case Stmt::Kind::Prints: {
      const auto &Pr = static_cast<const PrintsStmt &>(S);
      Inst &I = emit(Op::Prints, Pr.Where);
      I.Index = static_cast<uint32_t>(M.Strings.size());
      M.Strings.push_back(Pr.Text);
      return;
    }
    }
  }

  void lowerAssign(const AssignStmt &S) {
    const Expr &T = *S.Target;
    if (T.K == Expr::Kind::VarRef) {
      const auto &V = static_cast<const VarRefExpr &>(T);
      RegId Src = lowerExpr(*S.Value);
      if (V.isStatic()) {
        Inst &I = emit(Op::StoreStatic, S.Where);
        I.Index = V.staticIndex();
        I.A = Src;
        I.IsRefValue = M.Statics[I.Index].IsRef;
        return;
      }
      Inst &I = emit(Op::Move, S.Where);
      I.Dst = V.LocalIndex;
      I.A = Src;
      return;
    }
    if (T.K == Expr::Kind::FieldAccess) {
      const auto &FA = static_cast<const FieldAccessExpr &>(T);
      RegId Base = lowerExpr(*FA.Base);
      RegId Src = lowerExpr(*S.Value);
      Inst &I = emit(Op::StoreField, S.Where);
      I.A = Base;
      I.B = Src;
      I.Index = FA.SlotIndex;
      I.IsRefValue = S.Value->Ty.isRef() || FA.Ty.isRef();
      return;
    }
    if (T.K == Expr::Kind::IndexAccess) {
      const auto &IA = static_cast<const IndexAccessExpr &>(T);
      RegId Base = lowerExpr(*IA.Base);
      RegId Index = lowerExpr(*IA.Index);
      RegId Src = lowerExpr(*S.Value);
      Inst &I = emit(Op::StoreElem, S.Where);
      I.A = Base;
      I.B = Index;
      I.C = Src;
      I.IsRefValue = IA.Base->Ty.Kind == Type::RefArray;
      return;
    }
    assert(false && "Sema admitted a non-assignable target");
  }

  //===--------------------------------------------------------------------===
  // Expressions.
  //===--------------------------------------------------------------------===

  RegId lowerExpr(const Expr &E) {
    switch (E.K) {
    case Expr::Kind::IntLit: {
      RegId Dst = newReg();
      Inst &I = emit(Op::ConstInt, E.Where);
      I.Dst = Dst;
      I.Imm = static_cast<const IntLitExpr &>(E).Value;
      return Dst;
    }
    case Expr::Kind::BoolLit: {
      RegId Dst = newReg();
      Inst &I = emit(Op::ConstInt, E.Where);
      I.Dst = Dst;
      I.Imm = static_cast<const BoolLitExpr &>(E).Value ? 1 : 0;
      return Dst;
    }
    case Expr::Kind::NullLit: {
      RegId Dst = newReg();
      Inst &I = emit(Op::ConstInt, E.Where);
      I.Dst = Dst;
      I.Imm = 0;
      return Dst;
    }
    case Expr::Kind::VarRef: {
      const auto &V = static_cast<const VarRefExpr &>(E);
      if (V.isStatic()) {
        RegId Dst = newReg();
        Inst &I = emit(Op::LoadStatic, E.Where);
        I.Dst = Dst;
        I.Index = V.staticIndex();
        I.IsRefValue = M.Statics[I.Index].IsRef;
        return Dst;
      }
      return V.LocalIndex;
    }
    case Expr::Kind::StaticRef: {
      const auto &R = static_cast<const StaticRefExpr &>(E);
      RegId Dst = newReg();
      Inst &I = emit(Op::LoadStatic, E.Where);
      I.Dst = Dst;
      I.Index = R.StaticIndex;
      I.IsRefValue = M.Statics[I.Index].IsRef;
      return Dst;
    }
    case Expr::Kind::Binary: {
      const auto &B = static_cast<const BinaryExpr &>(E);
      if (B.Op == BinOp::And || B.Op == BinOp::Or)
        return lowerShortCircuit(B);
      RegId L = lowerExpr(*B.Lhs);
      RegId R = lowerExpr(*B.Rhs);
      RegId Dst = newReg();
      Inst &I = emit(Op::Bin, E.Where);
      I.Dst = Dst;
      I.A = L;
      I.B = R;
      I.BOp = B.Op;
      return Dst;
    }
    case Expr::Kind::Unary: {
      const auto &U = static_cast<const UnaryExpr &>(E);
      RegId Sub = lowerExpr(*U.Sub);
      RegId Dst = newReg();
      Inst &I = emit(U.Op == UnOp::Neg ? Op::Neg : Op::Not, E.Where);
      I.Dst = Dst;
      I.A = Sub;
      return Dst;
    }
    case Expr::Kind::Call: {
      const auto &C = static_cast<const CallExpr &>(E);
      std::vector<RegId> Args;
      for (const ExprPtr &A : C.Args)
        Args.push_back(lowerExpr(*A));
      RegId Dst = newReg();
      Inst &I = emit(Op::Call, E.Where);
      I.Dst = Dst;
      I.Index = FuncIds.at(C.Callee);
      I.Args = std::move(Args);
      I.Imm = C.Ty.Kind != Type::Void ? 1 : 0;
      return Dst;
    }
    case Expr::Kind::Spawn: {
      const auto &Sp = static_cast<const SpawnExpr &>(E);
      std::vector<RegId> Args;
      for (const ExprPtr &A : Sp.Args)
        Args.push_back(lowerExpr(*A));
      RegId Dst = newReg();
      Inst &I = emit(Op::Spawn, E.Where);
      I.Dst = Dst;
      I.Index = FuncIds.at(Sp.Callee);
      I.Args = std::move(Args);
      return Dst;
    }
    case Expr::Kind::NewObject: {
      const auto &N = static_cast<const NewObjectExpr &>(E);
      RegId Dst = newReg();
      Inst &I = emit(Op::NewObject, E.Where);
      I.Dst = Dst;
      I.Index = ClassIds.at(N.ClassName);
      I.Index2 = NextAllocSite++;
      return Dst;
    }
    case Expr::Kind::NewArray: {
      const auto &N = static_cast<const NewArrayExpr &>(E);
      RegId Len = lowerExpr(*N.Length);
      RegId Dst = newReg();
      Inst &I = emit(Op::NewArray, E.Where);
      I.Dst = Dst;
      I.A = Len;
      I.Index = N.ElemTy.Kind == Type::Class ? 1 : 0;
      I.Index2 = NextAllocSite++;
      return Dst;
    }
    case Expr::Kind::FieldAccess: {
      const auto &FA = static_cast<const FieldAccessExpr &>(E);
      RegId Base = lowerExpr(*FA.Base);
      RegId Dst = newReg();
      Inst &I = emit(Op::LoadField, E.Where);
      I.Dst = Dst;
      I.A = Base;
      I.Index = FA.SlotIndex;
      I.IsRefValue = FA.Ty.isRef();
      return Dst;
    }
    case Expr::Kind::IndexAccess: {
      const auto &IA = static_cast<const IndexAccessExpr &>(E);
      RegId Base = lowerExpr(*IA.Base);
      RegId Index = lowerExpr(*IA.Index);
      RegId Dst = newReg();
      Inst &I = emit(Op::LoadElem, E.Where);
      I.Dst = Dst;
      I.A = Base;
      I.B = Index;
      I.IsRefValue = IA.Ty.isRef();
      return Dst;
    }
    case Expr::Kind::Len: {
      const auto &L = static_cast<const LenExpr &>(E);
      RegId Base = lowerExpr(*L.Base);
      RegId Dst = newReg();
      Inst &I = emit(Op::ArrayLen, E.Where);
      I.Dst = Dst;
      I.A = Base;
      return Dst;
    }
    }
    assert(false && "unhandled expression kind");
    return 0;
  }

  RegId lowerShortCircuit(const BinaryExpr &B) {
    RegId Dst = newReg();
    RegId L = lowerExpr(*B.Lhs);
    {
      Inst &I = emit(Op::Move, B.Where);
      I.Dst = Dst;
      I.A = L;
    }
    BlockId RhsB = newBlock();
    BlockId EndB = newBlock();
    Inst &Br = emit(Op::Branch, B.Where);
    Br.A = Dst;
    if (B.Op == BinOp::And) {
      Br.Index = RhsB; // true: result depends on RHS.
      Br.Index2 = EndB;
    } else {
      Br.Index = EndB; // true: short-circuit.
      Br.Index2 = RhsB;
    }
    setBlock(RhsB);
    RegId R = lowerExpr(*B.Rhs);
    {
      Inst &I = emit(Op::Move, B.Where);
      I.Dst = Dst;
      I.A = R;
    }
    jumpTo(EndB, B.Where);
    setBlock(EndB);
    return Dst;
  }

  const Program &P;
  Module M;
  std::unordered_map<std::string, uint32_t> ClassIds;
  std::unordered_map<std::string, uint32_t> FuncIds;
  Function *CurFunc = nullptr;
  BlockId CurBlock = 0;
  unsigned AtomicDepth = 0;
  uint32_t NextAllocSite = 0;
};

} // namespace

Module satm::tc::lower(const Program &P) { return LoweringImpl(P).run(); }
