//===- tc/Optimize.h - Scalar IR optimizations -----------------*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scalar cleanups a JIT performs before the barrier-specific work
/// (§6 opens with the JIT's "own optimizations"): block-local constant
/// folding and copy propagation, branch simplification over folded
/// conditions, and global dead-code elimination of pure instructions.
/// Heap accesses are never touched — their barriers are the subject of the
/// dedicated passes.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_TC_OPTIMIZE_H
#define SATM_TC_OPTIMIZE_H

#include "tc/Ir.h"

namespace satm {
namespace tc {

struct OptimizeStats {
  uint64_t Folded = 0;      ///< Bin/Neg/Not turned into ConstInt.
  uint64_t CopiesFwd = 0;   ///< Operands rewritten through Moves.
  uint64_t BranchesFixed = 0; ///< Branch with constant condition -> Jump.
  uint64_t DeadRemoved = 0; ///< Pure instructions with unused results.
};

/// Runs folding + copy propagation + DCE on \p M to a fixpoint.
OptimizeStats runScalarOpts(ir::Module &M);

} // namespace tc
} // namespace satm

#endif // SATM_TC_OPTIMIZE_H
