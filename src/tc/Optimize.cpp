//===- tc/Optimize.cpp - Scalar IR optimizations --------------------------===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "tc/Optimize.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

using namespace satm;
using namespace satm::tc;
using namespace satm::tc::ir;

namespace {

/// Lattice value a register holds at a program point within one block.
struct RegValue {
  enum KindTy : uint8_t { Unknown, Const, CopyOf } Kind = Unknown;
  int64_t ConstVal = 0;
  RegId Source = 0;
};

class BlockState {
public:
  RegValue get(RegId R) const {
    auto It = Values.find(R);
    return It == Values.end() ? RegValue() : It->second;
  }

  /// Resolves \p R through copy chains to its representative register.
  RegId resolveCopy(RegId R) const {
    RegValue V = get(R);
    // Chains are short (each Move resolves its source when recorded).
    return V.Kind == RegValue::CopyOf ? V.Source : R;
  }

  void setConst(RegId R, int64_t C) {
    kill(R);
    Values[R] = {RegValue::Const, C, 0};
  }

  void setCopy(RegId Dst, RegId Src) {
    kill(Dst);
    if (Dst == Src)
      return;
    RegValue SrcVal = get(Src);
    if (SrcVal.Kind == RegValue::Const) {
      Values[Dst] = SrcVal;
      return;
    }
    Values[Dst] = {RegValue::CopyOf, 0, resolveCopy(Src)};
  }

  void setUnknown(RegId R) {
    kill(R);
    Values.erase(R);
  }

private:
  /// A write to \p R invalidates every copy-of-R fact.
  void kill(RegId R) {
    for (auto It = Values.begin(); It != Values.end();) {
      if (It->second.Kind == RegValue::CopyOf && It->second.Source == R)
        It = Values.erase(It);
      else
        ++It;
    }
  }

  std::unordered_map<RegId, RegValue> Values;
};

/// Invokes \p Fn on every register the instruction reads.
template <typename FnT> void forEachUse(Inst &I, FnT Fn) {
  switch (I.K) {
  case Op::Move:
  case Op::Neg:
  case Op::Not:
  case Op::ArrayLen:
  case Op::NewArray:
  case Op::LoadField:
  case Op::Join:
  case Op::Print:
    Fn(I.A);
    break;
  case Op::Bin:
  case Op::StoreField:
  case Op::LoadElem:
    Fn(I.A);
    Fn(I.B);
    break;
  case Op::StoreElem:
    Fn(I.A);
    Fn(I.B);
    Fn(I.C);
    break;
  case Op::StoreStatic:
    Fn(I.A);
    break;
  case Op::Branch:
    Fn(I.A);
    break;
  case Op::Ret:
    if (I.Imm)
      Fn(I.A);
    break;
  case Op::Call:
  case Op::Spawn:
    for (RegId &R : I.Args)
      Fn(R);
    break;
  case Op::ConstInt:
  case Op::NewObject:
  case Op::LoadStatic:
  case Op::Prints:
  case Op::Retry:
  case Op::AtomicBegin:
  case Op::AtomicEnd:
  case Op::OpenBegin:
  case Op::OpenEnd:
  case Op::Jump:
    break;
  }
}

/// True if \p K writes I.Dst.
bool definesDst(Op K) {
  switch (K) {
  case Op::ConstInt:
  case Op::Move:
  case Op::Bin:
  case Op::Neg:
  case Op::Not:
  case Op::NewObject:
  case Op::NewArray:
  case Op::LoadField:
  case Op::LoadStatic:
  case Op::LoadElem:
  case Op::ArrayLen:
  case Op::Call:
  case Op::Spawn:
    return true;
  default:
    return false;
  }
}

/// True if removing the instruction (when its result is unused) cannot
/// change program behavior: no heap effect, no control effect, no
/// potential runtime fault.
bool isPure(const Inst &I) {
  switch (I.K) {
  case Op::ConstInt:
  case Op::Move:
  case Op::Neg:
  case Op::Not:
    return true;
  case Op::Bin:
    // Division and remainder can fault; keep them.
    return I.BOp != BinOp::Div && I.BOp != BinOp::Rem;
  default:
    return false;
  }
}

/// Folds the binary operator over constants. \returns false when folding
/// must not happen (faulting or overflowing cases are left to runtime).
bool foldBin(BinOp Op, int64_t A, int64_t B, int64_t &Out) {
  switch (Op) {
  case BinOp::Add:
    Out = static_cast<int64_t>(static_cast<uint64_t>(A) +
                               static_cast<uint64_t>(B));
    return true;
  case BinOp::Sub:
    Out = static_cast<int64_t>(static_cast<uint64_t>(A) -
                               static_cast<uint64_t>(B));
    return true;
  case BinOp::Mul:
    Out = static_cast<int64_t>(static_cast<uint64_t>(A) *
                               static_cast<uint64_t>(B));
    return true;
  case BinOp::Div:
  case BinOp::Rem:
    if (B == 0 || (A == INT64_MIN && B == -1))
      return false; // Preserve the runtime fault.
    Out = Op == BinOp::Div ? A / B : A % B;
    return true;
  case BinOp::Lt:
    Out = A < B;
    return true;
  case BinOp::Le:
    Out = A <= B;
    return true;
  case BinOp::Gt:
    Out = A > B;
    return true;
  case BinOp::Ge:
    Out = A >= B;
    return true;
  case BinOp::Eq:
    Out = A == B;
    return true;
  case BinOp::Ne:
    Out = A != B;
    return true;
  case BinOp::And:
  case BinOp::Or:
    return false; // Lowered away; never reaches here.
  }
  return false;
}

bool foldBlock(Block &B, OptimizeStats &Stats) {
  bool Changed = false;
  BlockState State;
  for (Inst &I : B.Insts) {
    // Forward copies through operands first (cheap, aids folding).
    forEachUse(I, [&](RegId &R) {
      RegId Rep = State.resolveCopy(R);
      if (Rep != R) {
        R = Rep;
        ++Stats.CopiesFwd;
        Changed = true;
      }
    });

    switch (I.K) {
    case Op::ConstInt:
      State.setConst(I.Dst, I.Imm);
      break;
    case Op::Move:
      State.setCopy(I.Dst, I.A);
      break;
    case Op::Bin: {
      RegValue A = State.get(I.A), Bv = State.get(I.B);
      int64_t Out;
      if (A.Kind == RegValue::Const && Bv.Kind == RegValue::Const &&
          foldBin(I.BOp, A.ConstVal, Bv.ConstVal, Out)) {
        I.K = Op::ConstInt;
        I.Imm = Out;
        State.setConst(I.Dst, Out);
        ++Stats.Folded;
        Changed = true;
      } else {
        State.setUnknown(I.Dst);
      }
      break;
    }
    case Op::Neg:
    case Op::Not: {
      RegValue A = State.get(I.A);
      if (A.Kind == RegValue::Const) {
        int64_t Out = I.K == Op::Neg
                          ? static_cast<int64_t>(
                                -static_cast<uint64_t>(A.ConstVal))
                          : (A.ConstVal == 0);
        I.K = Op::ConstInt;
        I.Imm = Out;
        State.setConst(I.Dst, Out);
        ++Stats.Folded;
        Changed = true;
      } else {
        State.setUnknown(I.Dst);
      }
      break;
    }
    case Op::Branch: {
      RegValue Cond = State.get(I.A);
      if (Cond.Kind == RegValue::Const) {
        I.K = Op::Jump;
        I.Index = Cond.ConstVal != 0 ? I.Index : I.Index2;
        I.Index2 = 0;
        ++Stats.BranchesFixed;
        Changed = true;
      }
      break;
    }
    default:
      if (definesDst(I.K))
        State.setUnknown(I.Dst);
      break;
    }
  }
  return Changed;
}

bool removeDead(Function &F, OptimizeStats &Stats) {
  // Global (per-function) use counts; locals flow across blocks, so a
  // definition is dead only if its register is read nowhere at all and is
  // redefined before any... conservatively: read nowhere in the function.
  std::vector<bool> Used(F.NumRegs, false);
  for (Block &B : F.Blocks)
    for (Inst &I : B.Insts)
      forEachUse(I, [&](RegId &R) { Used[R] = true; });
  bool Changed = false;
  for (Block &B : F.Blocks) {
    std::vector<Inst> Kept;
    Kept.reserve(B.Insts.size());
    for (Inst &I : B.Insts) {
      if (isPure(I) && definesDst(I.K) && !Used[I.Dst]) {
        ++Stats.DeadRemoved;
        Changed = true;
        continue;
      }
      Kept.push_back(std::move(I));
    }
    B.Insts = std::move(Kept);
  }
  return Changed;
}

} // namespace

OptimizeStats satm::tc::runScalarOpts(Module &M) {
  OptimizeStats Stats;
  for (Function &F : M.Funcs) {
    bool Changed = true;
    int Rounds = 0;
    while (Changed && ++Rounds < 8) {
      Changed = false;
      for (Block &B : F.Blocks)
        Changed |= foldBlock(B, Stats);
      Changed |= removeDead(F, Stats);
    }
  }
  return Stats;
}
