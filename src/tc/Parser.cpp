//===- tc/Parser.cpp - TranC recursive-descent parser --------------------===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "tc/Parser.h"

using namespace satm;
using namespace satm::tc;

namespace {

class ParserImpl {
public:
  ParserImpl(std::vector<Token> Toks, Diag &D)
      : Toks(std::move(Toks)), D(D) {}

  Program run() {
    Program P;
    while (!at(TokKind::Eof)) {
      if (at(TokKind::KwClass)) {
        if (auto C = parseClass())
          P.Classes.push_back(std::move(C));
      } else if (at(TokKind::KwStatic)) {
        if (auto S = parseStatic())
          P.Statics.push_back(std::move(S));
      } else if (at(TokKind::KwFn)) {
        if (auto F = parseFunc())
          P.Funcs.push_back(std::move(F));
      } else {
        D.error(cur().Where, "expected 'class', 'static' or 'fn'");
        sync();
      }
    }
    return P;
  }

private:
  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(size_t Ahead = 1) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  bool at(TokKind K) const { return cur().Kind == K; }
  Token advance() { return Toks[Pos + 1 < Toks.size() ? Pos++ : Pos]; }
  bool accept(TokKind K) {
    if (!at(K))
      return false;
    advance();
    return true;
  }
  Token expect(TokKind K, const char *What) {
    if (at(K))
      return advance();
    D.error(cur().Where, std::string("expected ") + tokKindName(K) +
                             " in " + What + ", found " +
                             tokKindName(cur().Kind));
    return cur();
  }

  /// Error recovery: skip past the next ';' or '}', or up to (but not
  /// past) a top-level keyword. Consuming the stray ';'/'}' guarantees
  /// progress — the caller's loop would otherwise spin on it forever.
  void sync() {
    while (!at(TokKind::Eof)) {
      if (accept(TokKind::Semi) || accept(TokKind::RBrace))
        return;
      if (at(TokKind::KwClass) || at(TokKind::KwStatic) || at(TokKind::KwFn))
        return;
      advance();
    }
  }

  bool atType() const {
    return at(TokKind::KwInt) || at(TokKind::KwBool) || at(TokKind::Ident);
  }

  Type parseType() {
    Type Base;
    if (accept(TokKind::KwInt)) {
      Base = Type::intTy();
    } else if (accept(TokKind::KwBool)) {
      Base = Type::boolTy();
    } else if (at(TokKind::Ident)) {
      Base = Type::classTy(advance().Text);
    } else {
      D.error(cur().Where, "expected a type");
      advance();
      return Type::intTy();
    }
    if (accept(TokKind::LBracket)) {
      expect(TokKind::RBracket, "array type");
      if (Base.Kind == Type::Int)
        return Type::intArrayTy();
      if (Base.Kind == Type::Class)
        return Type::refArrayTy(Base.ClassName);
      D.error(cur().Where, "only int[] and class arrays are supported");
      return Type::intArrayTy();
    }
    return Base;
  }

  std::unique_ptr<ClassDecl> parseClass() {
    Loc W = cur().Where;
    expect(TokKind::KwClass, "class declaration");
    auto C = std::make_unique<ClassDecl>();
    C->Where = W;
    C->Name = expect(TokKind::Ident, "class declaration").Text;
    expect(TokKind::LBrace, "class declaration");
    while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
      FieldDecl F;
      F.Where = cur().Where;
      F.Ty = parseType();
      F.Name = expect(TokKind::Ident, "field declaration").Text;
      expect(TokKind::Semi, "field declaration");
      F.SlotIndex = static_cast<uint32_t>(C->Fields.size());
      C->Fields.push_back(std::move(F));
    }
    expect(TokKind::RBrace, "class declaration");
    return C;
  }

  std::unique_ptr<StaticDecl> parseStatic() {
    Loc W = cur().Where;
    expect(TokKind::KwStatic, "static declaration");
    auto S = std::make_unique<StaticDecl>();
    S->Where = W;
    S->Ty = parseType();
    S->Name = expect(TokKind::Ident, "static declaration").Text;
    expect(TokKind::Semi, "static declaration");
    return S;
  }

  std::unique_ptr<FuncDecl> parseFunc() {
    Loc W = cur().Where;
    expect(TokKind::KwFn, "function declaration");
    auto F = std::make_unique<FuncDecl>();
    F->Where = W;
    F->Name = expect(TokKind::Ident, "function declaration").Text;
    expect(TokKind::LParen, "parameter list");
    if (!at(TokKind::RParen)) {
      do {
        ParamDecl P;
        P.Where = cur().Where;
        P.Ty = parseType();
        P.Name = expect(TokKind::Ident, "parameter").Text;
        F->Params.push_back(std::move(P));
      } while (accept(TokKind::Comma));
    }
    expect(TokKind::RParen, "parameter list");
    F->RetTy = accept(TokKind::Colon) ? parseType() : Type::voidTy();
    F->Body = parseBlock();
    return F;
  }

  std::unique_ptr<BlockStmt> parseBlock() {
    Loc W = cur().Where;
    expect(TokKind::LBrace, "block");
    auto B = std::make_unique<BlockStmt>(W);
    while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
      if (StmtPtr S = parseStmt())
        B->Stmts.push_back(std::move(S));
    }
    expect(TokKind::RBrace, "block");
    return B;
  }

  StmtPtr parseStmt() {
    Loc W = cur().Where;
    switch (cur().Kind) {
    case TokKind::LBrace:
      return parseBlock();
    case TokKind::KwVar: {
      advance();
      std::string Name = expect(TokKind::Ident, "variable declaration").Text;
      Type DeclTy = Type::voidTy();
      if (accept(TokKind::Colon))
        DeclTy = parseType();
      expect(TokKind::Assign, "variable declaration");
      ExprPtr Init = parseExpr();
      expect(TokKind::Semi, "variable declaration");
      return std::make_unique<VarDeclStmt>(W, std::move(Name), DeclTy,
                                           std::move(Init));
    }
    case TokKind::KwIf: {
      advance();
      expect(TokKind::LParen, "if condition");
      ExprPtr Cond = parseExpr();
      expect(TokKind::RParen, "if condition");
      StmtPtr Then = parseStmt();
      StmtPtr Else;
      if (accept(TokKind::KwElse))
        Else = parseStmt();
      return std::make_unique<IfStmt>(W, std::move(Cond), std::move(Then),
                                      std::move(Else));
    }
    case TokKind::KwWhile: {
      advance();
      expect(TokKind::LParen, "while condition");
      ExprPtr Cond = parseExpr();
      expect(TokKind::RParen, "while condition");
      StmtPtr Body = parseStmt();
      return std::make_unique<WhileStmt>(W, std::move(Cond), std::move(Body));
    }
    case TokKind::KwReturn: {
      advance();
      ExprPtr Value;
      if (!at(TokKind::Semi))
        Value = parseExpr();
      expect(TokKind::Semi, "return statement");
      return std::make_unique<ReturnStmt>(W, std::move(Value));
    }
    case TokKind::KwAtomic: {
      advance();
      StmtPtr Body = parseBlock();
      return std::make_unique<AtomicStmt>(W, std::move(Body));
    }
    case TokKind::KwOpen: {
      advance();
      StmtPtr Body = parseBlock();
      return std::make_unique<OpenStmt>(W, std::move(Body));
    }
    case TokKind::KwRetry: {
      advance();
      expect(TokKind::Semi, "retry statement");
      return std::make_unique<RetryStmt>(W);
    }
    case TokKind::KwJoin: {
      advance();
      expect(TokKind::LParen, "join");
      ExprPtr Handle = parseExpr();
      expect(TokKind::RParen, "join");
      expect(TokKind::Semi, "join");
      return std::make_unique<JoinStmt>(W, std::move(Handle));
    }
    case TokKind::KwPrint: {
      advance();
      expect(TokKind::LParen, "print");
      ExprPtr Value = parseExpr();
      expect(TokKind::RParen, "print");
      expect(TokKind::Semi, "print");
      return std::make_unique<PrintStmt>(W, std::move(Value));
    }
    case TokKind::KwPrints: {
      advance();
      expect(TokKind::LParen, "prints");
      std::string Text = expect(TokKind::StrLit, "prints").Text;
      expect(TokKind::RParen, "prints");
      expect(TokKind::Semi, "prints");
      return std::make_unique<PrintsStmt>(W, std::move(Text));
    }
    default: {
      // Assignment or expression statement.
      ExprPtr E = parseExpr();
      if (accept(TokKind::Assign)) {
        ExprPtr Value = parseExpr();
        expect(TokKind::Semi, "assignment");
        return std::make_unique<AssignStmt>(W, std::move(E),
                                            std::move(Value));
      }
      expect(TokKind::Semi, "expression statement");
      return std::make_unique<ExprStmt>(W, std::move(E));
    }
    }
  }

  //===--------------------------------------------------------------------===
  // Expressions (precedence climbing).
  //===--------------------------------------------------------------------===

  ExprPtr parseExpr() { return parseOr(); }

  ExprPtr parseOr() {
    ExprPtr L = parseAnd();
    while (at(TokKind::OrOr)) {
      Loc W = advance().Where;
      L = std::make_unique<BinaryExpr>(W, BinOp::Or, std::move(L),
                                       parseAnd());
    }
    return L;
  }

  ExprPtr parseAnd() {
    ExprPtr L = parseEquality();
    while (at(TokKind::AndAnd)) {
      Loc W = advance().Where;
      L = std::make_unique<BinaryExpr>(W, BinOp::And, std::move(L),
                                       parseEquality());
    }
    return L;
  }

  ExprPtr parseEquality() {
    ExprPtr L = parseRelational();
    for (;;) {
      BinOp Op;
      if (at(TokKind::EqEq))
        Op = BinOp::Eq;
      else if (at(TokKind::NotEq))
        Op = BinOp::Ne;
      else
        return L;
      Loc W = advance().Where;
      L = std::make_unique<BinaryExpr>(W, Op, std::move(L),
                                       parseRelational());
    }
  }

  ExprPtr parseRelational() {
    ExprPtr L = parseAdditive();
    for (;;) {
      BinOp Op;
      if (at(TokKind::Lt))
        Op = BinOp::Lt;
      else if (at(TokKind::Le))
        Op = BinOp::Le;
      else if (at(TokKind::Gt))
        Op = BinOp::Gt;
      else if (at(TokKind::Ge))
        Op = BinOp::Ge;
      else
        return L;
      Loc W = advance().Where;
      L = std::make_unique<BinaryExpr>(W, Op, std::move(L), parseAdditive());
    }
  }

  ExprPtr parseAdditive() {
    ExprPtr L = parseMultiplicative();
    for (;;) {
      BinOp Op;
      if (at(TokKind::Plus))
        Op = BinOp::Add;
      else if (at(TokKind::Minus))
        Op = BinOp::Sub;
      else
        return L;
      Loc W = advance().Where;
      L = std::make_unique<BinaryExpr>(W, Op, std::move(L),
                                       parseMultiplicative());
    }
  }

  ExprPtr parseMultiplicative() {
    ExprPtr L = parseUnary();
    for (;;) {
      BinOp Op;
      if (at(TokKind::Star))
        Op = BinOp::Mul;
      else if (at(TokKind::Slash))
        Op = BinOp::Div;
      else if (at(TokKind::Percent))
        Op = BinOp::Rem;
      else
        return L;
      Loc W = advance().Where;
      L = std::make_unique<BinaryExpr>(W, Op, std::move(L), parseUnary());
    }
  }

  ExprPtr parseUnary() {
    if (at(TokKind::Minus)) {
      Loc W = advance().Where;
      return std::make_unique<UnaryExpr>(W, UnOp::Neg, parseUnary());
    }
    if (at(TokKind::Not)) {
      Loc W = advance().Where;
      return std::make_unique<UnaryExpr>(W, UnOp::Not, parseUnary());
    }
    return parsePostfix();
  }

  ExprPtr parsePostfix() {
    ExprPtr E = parsePrimary();
    for (;;) {
      if (at(TokKind::Dot)) {
        Loc W = advance().Where;
        std::string Field = expect(TokKind::Ident, "field access").Text;
        E = std::make_unique<FieldAccessExpr>(W, std::move(E),
                                              std::move(Field));
        continue;
      }
      if (at(TokKind::LBracket)) {
        Loc W = advance().Where;
        ExprPtr Index = parseExpr();
        expect(TokKind::RBracket, "array index");
        E = std::make_unique<IndexAccessExpr>(W, std::move(E),
                                              std::move(Index));
        continue;
      }
      return E;
    }
  }

  std::vector<ExprPtr> parseArgs() {
    std::vector<ExprPtr> Args;
    expect(TokKind::LParen, "argument list");
    if (!at(TokKind::RParen)) {
      do {
        Args.push_back(parseExpr());
      } while (accept(TokKind::Comma));
    }
    expect(TokKind::RParen, "argument list");
    return Args;
  }

  ExprPtr parsePrimary() {
    Loc W = cur().Where;
    switch (cur().Kind) {
    case TokKind::IntLit: {
      int64_t V = advance().IntValue;
      return std::make_unique<IntLitExpr>(W, V);
    }
    case TokKind::KwTrue:
      advance();
      return std::make_unique<BoolLitExpr>(W, true);
    case TokKind::KwFalse:
      advance();
      return std::make_unique<BoolLitExpr>(W, false);
    case TokKind::KwNull:
      advance();
      return std::make_unique<NullLitExpr>(W);
    case TokKind::KwLen: {
      advance();
      expect(TokKind::LParen, "len");
      ExprPtr Base = parseExpr();
      expect(TokKind::RParen, "len");
      return std::make_unique<LenExpr>(W, std::move(Base));
    }
    case TokKind::KwSpawn: {
      advance();
      std::string Callee = expect(TokKind::Ident, "spawn").Text;
      return std::make_unique<SpawnExpr>(W, std::move(Callee), parseArgs());
    }
    case TokKind::KwNew: {
      advance();
      if (accept(TokKind::KwInt)) {
        expect(TokKind::LBracket, "array allocation");
        ExprPtr Len = parseExpr();
        expect(TokKind::RBracket, "array allocation");
        return std::make_unique<NewArrayExpr>(W, Type::intTy(),
                                              std::move(Len));
      }
      std::string Name = expect(TokKind::Ident, "allocation").Text;
      if (accept(TokKind::LBracket)) {
        ExprPtr Len = parseExpr();
        expect(TokKind::RBracket, "array allocation");
        return std::make_unique<NewArrayExpr>(W, Type::classTy(Name),
                                              std::move(Len));
      }
      expect(TokKind::LParen, "object allocation");
      expect(TokKind::RParen, "object allocation");
      return std::make_unique<NewObjectExpr>(W, std::move(Name));
    }
    case TokKind::Ident: {
      std::string Name = advance().Text;
      if (at(TokKind::LParen))
        return std::make_unique<CallExpr>(W, std::move(Name), parseArgs());
      return std::make_unique<VarRefExpr>(W, std::move(Name));
    }
    case TokKind::LParen: {
      advance();
      ExprPtr E = parseExpr();
      expect(TokKind::RParen, "parenthesized expression");
      return E;
    }
    default:
      D.error(W, std::string("expected an expression, found ") +
                     tokKindName(cur().Kind));
      advance();
      return std::make_unique<IntLitExpr>(W, 0);
    }
  }

  std::vector<Token> Toks;
  Diag &D;
  size_t Pos = 0;
};

} // namespace

Program satm::tc::parse(const std::string &Source, Diag &D) {
  std::vector<Token> Toks = lex(Source, D);
  return ParserImpl(std::move(Toks), D).run();
}
