//===- tc/Aggregate.h - Barrier aggregation pass ---------------*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §6 barrier-aggregation optimization: "Barrier aggregation then
/// detects multiple barriers to the same object in the same basic block and
/// combines them into a single aggregated barrier" (Figure 14). Per the
/// paper's constraints the pass never aggregates across basic blocks, calls
/// or accesses to multiple objects: a group is a maximal run of accesses to
/// one base register within a block, interrupted only by pure register
/// instructions that do not redefine the base.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_TC_AGGREGATE_H
#define SATM_TC_AGGREGATE_H

#include "tc/Ir.h"

namespace satm {
namespace tc {

/// Annotates aggregation roles on barrier-carrying field/element accesses
/// of \p M. Run after the barrier-removal analyses (groups only form over
/// accesses that still need barriers).
/// \returns the number of groups formed (each saves groupSize-1 acquires).
uint64_t runBarrierAggregation(ir::Module &M);

} // namespace tc
} // namespace satm

#endif // SATM_TC_AGGREGATE_H
