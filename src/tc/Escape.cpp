//===- tc/Escape.cpp - Intraprocedural static escape analysis ------------===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "tc/Escape.h"

#include <deque>

using namespace satm;
using namespace satm::tc;
using namespace satm::tc::ir;

namespace {

constexpr uint32_t NonLocal = ~0u;

/// Per-program-point state: for each register, the allocation site whose
/// provably-unescaped fresh object it holds, or NonLocal. An escape event
/// demotes every register holding the escaping value, so no separate
/// escaped-set is needed: a site id can only reappear via a fresh
/// allocation (which demotes stale aliases first).
using State = std::vector<uint32_t>;

bool mergeInto(State &Dst, const State &Src) {
  bool Changed = false;
  for (size_t I = 0; I < Dst.size(); ++I) {
    if (Dst[I] != Src[I] && Dst[I] != NonLocal) {
      Dst[I] = NonLocal;
      Changed = true;
    }
  }
  return Changed;
}

void retire(State &S, uint32_t Value) {
  if (Value == NonLocal)
    return;
  for (uint32_t &R : S)
    if (R == Value)
      R = NonLocal;
}

/// Applies \p I to \p S. When \p Annotate is set, also clears NeedsBarrier
/// on accesses with provably-local bases, counting removals in \p Removed.
void transfer(const Inst &I, State &S, bool Annotate, Inst *Mutable,
              uint64_t &Removed) {
  auto DefNonLocal = [&S](RegId R) { S[R] = NonLocal; };
  switch (I.K) {
  case Op::NewObject:
  case Op::NewArray:
    // Stale aliases of a previous loop iteration's object first.
    retire(S, I.Index2);
    S[I.Dst] = I.Index2;
    return;
  case Op::Move:
    S[I.Dst] = S[I.A];
    return;
  case Op::LoadField:
  case Op::LoadElem:
    if (Annotate && S[I.A] != NonLocal && Mutable->NeedsBarrier) {
      Mutable->NeedsBarrier = false;
      ++Removed;
    }
    DefNonLocal(I.Dst);
    return;
  case Op::StoreField:
    if (Annotate && S[I.A] != NonLocal && Mutable->NeedsBarrier) {
      Mutable->NeedsBarrier = false;
      ++Removed;
    }
    if (I.IsRefValue)
      retire(S, S[I.B]); // The stored reference escapes (conservative).
    return;
  case Op::StoreElem:
    if (Annotate && S[I.A] != NonLocal && Mutable->NeedsBarrier) {
      Mutable->NeedsBarrier = false;
      ++Removed;
    }
    if (I.IsRefValue)
      retire(S, S[I.C]);
    return;
  case Op::LoadStatic:
    DefNonLocal(I.Dst);
    return;
  case Op::StoreStatic:
    if (I.IsRefValue)
      retire(S, S[I.A]);
    return;
  case Op::Call:
  case Op::Spawn:
    for (RegId A : I.Args)
      retire(S, S[A]); // Reachable from call arguments (§6).
    DefNonLocal(I.Dst);
    return;
  case Op::Ret:
    if (I.Imm)
      retire(S, S[I.A]);
    return;
  case Op::ConstInt:
  case Op::Bin:
  case Op::Neg:
  case Op::Not:
  case Op::ArrayLen:
    DefNonLocal(I.Dst);
    return;
  case Op::Join:
  case Op::Print:
  case Op::Prints:
  case Op::Retry:
  case Op::AtomicBegin:
  case Op::AtomicEnd:
  case Op::OpenBegin:
  case Op::OpenEnd:
  case Op::Jump:
  case Op::Branch:
    return;
  }
}

uint64_t runOnFunction(Function &F) {
  if (F.Blocks.empty())
    return 0;
  std::vector<State> EntryStates(F.Blocks.size(),
                                 State(F.NumRegs, NonLocal));
  std::vector<bool> Seen(F.Blocks.size(), false);
  Seen[0] = true;

  std::deque<BlockId> Work{0};
  uint64_t Dummy = 0;
  while (!Work.empty()) {
    BlockId B = Work.front();
    Work.pop_front();
    State S = EntryStates[B];
    for (const Inst &I : F.Blocks[B].Insts)
      transfer(I, S, /*Annotate=*/false, nullptr, Dummy);
    auto Propagate = [&](BlockId Succ) {
      if (!Seen[Succ]) {
        Seen[Succ] = true;
        EntryStates[Succ] = S;
        Work.push_back(Succ);
      } else if (mergeInto(EntryStates[Succ], S)) {
        Work.push_back(Succ);
      }
    };
    if (!F.Blocks[B].Insts.empty()) {
      const Inst &Last = F.Blocks[B].Insts.back();
      if (Last.K == Op::Jump)
        Propagate(Last.Index);
      else if (Last.K == Op::Branch) {
        Propagate(Last.Index);
        Propagate(Last.Index2);
      }
    }
  }

  // Annotation pass over the converged states.
  uint64_t Removed = 0;
  for (BlockId B = 0; B < F.Blocks.size(); ++B) {
    if (!Seen[B])
      continue;
    State S = EntryStates[B];
    for (Inst &I : F.Blocks[B].Insts)
      transfer(I, S, /*Annotate=*/true, &I, Removed);
  }
  return Removed;
}

} // namespace

uint64_t satm::tc::runIntraprocEscape(Module &M) {
  uint64_t Removed = 0;
  for (Function &F : M.Funcs)
    Removed += runOnFunction(F);
  return Removed;
}
