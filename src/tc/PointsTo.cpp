//===- tc/PointsTo.cpp - Context-aware Andersen points-to -----------------===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "tc/PointsTo.h"

#include <deque>

using namespace satm;
using namespace satm::tc;
using namespace satm::tc::ir;

PointsTo::PointsTo(const Module &M) {
  NumHeapObjs = M.NumAllocSites * 2;
  NumStatics = static_cast<uint32_t>(M.Statics.size());
  solve(M);
}

void PointsTo::solve(const Module &M) {
  //===------------------------------------------------------------------===
  // Phase 1: reachability over (function, context) instances.
  //===------------------------------------------------------------------===
  std::deque<uint64_t> Work;
  auto Reach = [&](uint32_t Func, Ctx C) {
    uint64_t Key = instKey(Func, C);
    if (Reachable.insert(Key).second)
      Work.push_back(Key);
  };
  if (M.MainFunc != ~0u)
    Reach(M.MainFunc, Ctx::Out);
  while (!Work.empty()) {
    uint64_t Key = Work.front();
    Work.pop_front();
    uint32_t Func = static_cast<uint32_t>(Key >> 1);
    Ctx C = static_cast<Ctx>(Key & 1);
    for (const Block &B : M.Funcs[Func].Blocks)
      for (const Inst &I : B.Insts) {
        if (I.K == Op::Call)
          Reach(I.Index, effectiveCtx(C, I));
        else if (I.K == Op::Spawn)
          Reach(I.Index, Ctx::Out); // Threads start outside transactions.
      }
  }

  //===------------------------------------------------------------------===
  // Phase 2: fixpoint over inclusion constraints. The constraint set is
  // small (TranC modules are benchmark-sized), so we simply re-walk every
  // reachable instruction until nothing changes; each walk applies base
  // (allocation), copy, field-load/store, call and return constraints.
  //===------------------------------------------------------------------===
  auto Union = [](ObjSet &Dst, const ObjSet &Src) {
    bool Changed = false;
    for (uint32_t O : Src)
      Changed |= Dst.insert(O).second;
    return Changed;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint64_t Key : Reachable) {
      uint32_t Func = static_cast<uint32_t>(Key >> 1);
      Ctx C = static_cast<Ctx>(Key & 1);
      const Function &F = M.Funcs[Func];
      for (const Block &B : F.Blocks) {
        for (const Inst &I : B.Insts) {
          Ctx E = effectiveCtx(C, I);
          switch (I.K) {
          case Op::NewObject:
          case Op::NewArray:
            Changed |= VarSets[varKey(Func, I.Dst, C)]
                           .insert(objId(I.Index2, E))
                           .second;
            break;
          case Op::Move:
            Changed |= Union(VarSets[varKey(Func, I.Dst, C)],
                             VarSets[varKey(Func, I.A, C)]);
            break;
          case Op::LoadField:
            if (I.IsRefValue) {
              // Snapshot the base set: Dst may alias the base register
              // (x = x.f), and inserting into a set being iterated is UB.
              ObjSet Base = VarSets[varKey(Func, I.A, C)];
              for (uint32_t O : Base)
                Changed |= Union(VarSets[varKey(Func, I.Dst, C)],
                                 FieldSets[fieldKey(O, I.Index)]);
            }
            break;
          case Op::StoreField:
            if (I.IsRefValue)
              for (uint32_t O : VarSets[varKey(Func, I.A, C)])
                Changed |= Union(FieldSets[fieldKey(O, I.Index)],
                                 VarSets[varKey(Func, I.B, C)]);
            break;
          case Op::LoadElem:
            if (I.IsRefValue) {
              ObjSet Base = VarSets[varKey(Func, I.A, C)]; // See LoadField.
              for (uint32_t O : Base)
                Changed |= Union(VarSets[varKey(Func, I.Dst, C)],
                                 FieldSets[fieldKey(O, ElemField)]);
            }
            break;
          case Op::StoreElem:
            if (I.IsRefValue)
              for (uint32_t O : VarSets[varKey(Func, I.A, C)])
                Changed |= Union(FieldSets[fieldKey(O, ElemField)],
                                 VarSets[varKey(Func, I.C, C)]);
            break;
          case Op::LoadStatic:
            if (I.IsRefValue)
              Changed |= Union(VarSets[varKey(Func, I.Dst, C)],
                               StaticSets[I.Index]);
            break;
          case Op::StoreStatic:
            if (I.IsRefValue)
              Changed |= Union(StaticSets[I.Index],
                               VarSets[varKey(Func, I.A, C)]);
            break;
          case Op::Call: {
            Ctx Target = E;
            for (size_t A = 0; A < I.Args.size(); ++A)
              Changed |= Union(
                  VarSets[varKey(I.Index, static_cast<RegId>(A), Target)],
                  VarSets[varKey(Func, I.Args[A], C)]);
            if (I.Imm && M.Funcs[I.Index].RetIsRef)
              Changed |= Union(VarSets[varKey(Func, I.Dst, C)],
                               retSetFor(I.Index, Target));
            break;
          }
          case Op::Spawn:
            for (size_t A = 0; A < I.Args.size(); ++A) {
              Changed |= Union(
                  VarSets[varKey(I.Index, static_cast<RegId>(A), Ctx::Out)],
                  VarSets[varKey(Func, I.Args[A], C)]);
              Changed |=
                  Union(SpawnSeeds, VarSets[varKey(Func, I.Args[A], C)]);
            }
            break;
          case Op::Ret:
            if (I.Imm && F.RetIsRef)
              Changed |= Union(retSetFor(Func, C),
                               VarSets[varKey(Func, I.A, C)]);
            break;
          default:
            break;
          }
        }
      }
    }
  }
}
