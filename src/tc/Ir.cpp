//===- tc/Ir.cpp - IR text dump -------------------------------------------===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "tc/Ir.h"

#include <sstream>

using namespace satm;
using namespace satm::tc;
using namespace satm::tc::ir;

namespace {

const char *opName(Op K) {
  switch (K) {
  case Op::ConstInt:
    return "const";
  case Op::Move:
    return "move";
  case Op::Bin:
    return "bin";
  case Op::Neg:
    return "neg";
  case Op::Not:
    return "not";
  case Op::NewObject:
    return "newobj";
  case Op::NewArray:
    return "newarr";
  case Op::LoadField:
    return "ldfld";
  case Op::StoreField:
    return "stfld";
  case Op::LoadStatic:
    return "ldsta";
  case Op::StoreStatic:
    return "ststa";
  case Op::LoadElem:
    return "ldelem";
  case Op::StoreElem:
    return "stelem";
  case Op::ArrayLen:
    return "len";
  case Op::Call:
    return "call";
  case Op::Spawn:
    return "spawn";
  case Op::Join:
    return "join";
  case Op::Print:
    return "print";
  case Op::Prints:
    return "prints";
  case Op::Retry:
    return "retry";
  case Op::AtomicBegin:
    return "atomic.begin";
  case Op::AtomicEnd:
    return "atomic.end";
  case Op::OpenBegin:
    return "open.begin";
  case Op::OpenEnd:
    return "open.end";
  case Op::Jump:
    return "jump";
  case Op::Branch:
    return "branch";
  case Op::Ret:
    return "ret";
  }
  return "?";
}

const char *binOpName(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::Mul:
    return "*";
  case BinOp::Div:
    return "/";
  case BinOp::Rem:
    return "%";
  case BinOp::Lt:
    return "<";
  case BinOp::Le:
    return "<=";
  case BinOp::Gt:
    return ">";
  case BinOp::Ge:
    return ">=";
  case BinOp::Eq:
    return "==";
  case BinOp::Ne:
    return "!=";
  case BinOp::And:
    return "&&";
  case BinOp::Or:
    return "||";
  }
  return "?";
}

} // namespace

std::string satm::tc::ir::printModule(const Module &M) {
  std::ostringstream OS;
  for (const Function &F : M.Funcs) {
    OS << "fn " << F.Name << " (params=" << F.NumParams
       << ", regs=" << F.NumRegs << ")\n";
    for (size_t B = 0; B < F.Blocks.size(); ++B) {
      OS << "  b" << B << ":\n";
      for (const Inst &I : F.Blocks[B].Insts) {
        OS << "    " << opName(I.K);
        switch (I.K) {
        case Op::ConstInt:
          OS << " r" << I.Dst << " = " << I.Imm;
          break;
        case Op::Move:
          OS << " r" << I.Dst << " = r" << I.A;
          break;
        case Op::Bin:
          OS << " r" << I.Dst << " = r" << I.A << " " << binOpName(I.BOp)
             << " r" << I.B;
          break;
        case Op::Neg:
        case Op::Not:
          OS << " r" << I.Dst << " = r" << I.A;
          break;
        case Op::NewObject:
          OS << " r" << I.Dst << " = " << M.Classes[I.Index].Name << " @site"
             << I.Index2;
          break;
        case Op::NewArray:
          OS << " r" << I.Dst << " = [r" << I.A << "]"
             << (I.Index ? " ref" : " int") << " @site" << I.Index2;
          break;
        case Op::LoadField:
          OS << " r" << I.Dst << " = r" << I.A << ".f" << I.Index;
          break;
        case Op::StoreField:
          OS << " r" << I.A << ".f" << I.Index << " = r" << I.B;
          break;
        case Op::LoadStatic:
          OS << " r" << I.Dst << " = " << M.Statics[I.Index].Name;
          break;
        case Op::StoreStatic:
          OS << " " << M.Statics[I.Index].Name << " = r" << I.A;
          break;
        case Op::LoadElem:
          OS << " r" << I.Dst << " = r" << I.A << "[r" << I.B << "]";
          break;
        case Op::StoreElem:
          OS << " r" << I.A << "[r" << I.B << "] = r" << I.C;
          break;
        case Op::ArrayLen:
          OS << " r" << I.Dst << " = len r" << I.A;
          break;
        case Op::Call:
        case Op::Spawn:
          OS << " r" << I.Dst << " = " << M.Funcs[I.Index].Name << "(";
          for (size_t A = 0; A < I.Args.size(); ++A)
            OS << (A ? ", r" : "r") << I.Args[A];
          OS << ")";
          break;
        case Op::Join:
        case Op::Print:
          OS << " r" << I.A;
          break;
        case Op::Prints:
          OS << " \"" << M.Strings[I.Index] << "\"";
          break;
        case Op::Retry:
        case Op::AtomicEnd:
        case Op::OpenEnd:
          break;
        case Op::AtomicBegin:
        case Op::OpenBegin:
          OS << " end=b" << I.Index;
          break;
        case Op::Jump:
          OS << " b" << I.Index;
          break;
        case Op::Branch:
          OS << " r" << I.A << " ? b" << I.Index << " : b" << I.Index2;
          break;
        case Op::Ret:
          if (I.Imm)
            OS << " r" << I.A;
          break;
        }
        if (isHeapAccess(I.K)) {
          if (I.InAtomic)
            OS << " [txn]";
          if (!I.NeedsBarrier)
            OS << " [nobarrier]";
          if (I.Agg != AggRole::None)
            OS << " [agg" << static_cast<int>(I.Agg) << "]";
        }
        OS << "\n";
      }
    }
  }
  return OS.str();
}
