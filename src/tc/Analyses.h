//===- tc/Analyses.h - NAIT and thread-local analyses ----------*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two whole-program barrier-removal analyses the paper compares
/// (§5, Figure 13):
///
///  - NAIT (not-accessed-in-transaction, §5.2): per Figure 12, a non-
///    transactional *load* needs no barrier if no object it may access is
///    written in a transaction; a *store* needs none if no such object is
///    read or written in a transaction.
///  - TL (thread-local, §5.4): a straightforward thread-escape analysis
///    over the same points-to information; accesses that can only reach
///    objects never visible to another thread need no barrier.
///
/// Both return per-instruction verdicts; the pipeline (Pipeline.h) applies
/// them to the IR annotations and Figure 13's bench counts their difference.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_TC_ANALYSES_H
#define SATM_TC_ANALYSES_H

#include "tc/Ir.h"
#include "tc/PointsTo.h"

#include <vector>

namespace satm {
namespace tc {

/// Identifies one instruction in a module.
struct InstRef {
  uint32_t Func;
  uint32_t Block;
  uint32_t Index;
};

/// Per-instruction barrier-removal verdicts for the reachable
/// non-transactional heap accesses of a module.
struct BarrierVerdicts {
  std::vector<InstRef> Accesses;    ///< Reachable-in-Out heap accesses.
  std::vector<bool> IsStore;        ///< Parallel to Accesses.
  std::vector<bool> NaitRemovable;  ///< NAIT says the barrier can go.
  std::vector<bool> TlRemovable;    ///< TL says the barrier can go.

  /// Figure 13 aggregates.
  struct Counts {
    uint64_t ReadTotal = 0, WriteTotal = 0;
    uint64_t ReadNait = 0, WriteNait = 0;        ///< Removed by NAIT.
    uint64_t ReadTl = 0, WriteTl = 0;            ///< Removed by TL.
    uint64_t ReadNaitNotTl = 0, WriteNaitNotTl = 0;
    uint64_t ReadTlNotNait = 0, WriteTlNotNait = 0;
    uint64_t ReadEither = 0, WriteEither = 0;    ///< TL + NAIT combined.
  };
  Counts counts() const;
};

/// Runs NAIT and TL over \p M using \p P.
BarrierVerdicts analyzeBarriers(const ir::Module &M, const PointsTo &P);

/// Clears Inst::NeedsBarrier for every access \p V marks removable by the
/// selected analyses.
void applyVerdicts(ir::Module &M, const BarrierVerdicts &V, bool UseNait,
                   bool UseTl);

} // namespace tc
} // namespace satm

#endif // SATM_TC_ANALYSES_H
