//===- tc/Pipeline.cpp - Compilation and optimization driver -------------===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "tc/Pipeline.h"

#include "tc/Aggregate.h"
#include "tc/Escape.h"
#include "tc/Lowering.h"
#include "tc/Optimize.h"
#include "tc/Parser.h"
#include "tc/PointsTo.h"
#include "tc/Sema.h"
#include "tc/Verifier.h"

#include <cassert>

using namespace satm;
using namespace satm::tc;
using namespace satm::tc::ir;

PipelineStats satm::tc::runPasses(Module &M, const PassOptions &O) {
  PipelineStats Stats;
  if (O.ScalarOpts) {
    OptimizeStats OS = runScalarOpts(M);
    Stats.ScalarFolded =
        OS.Folded + OS.DeadRemoved + OS.BranchesFixed;
  }
  for (const Function &F : M.Funcs)
    for (const Block &B : F.Blocks)
      for (const Inst &I : B.Insts)
        if (isHeapAccess(I.K)) {
          ++Stats.HeapAccesses;
          Stats.BarriersBefore += I.NeedsBarrier;
        }

  if (O.Nait || O.ThreadLocal) {
    PointsTo P(M);
    BarrierVerdicts V = analyzeBarriers(M, P);
    Stats.WholeProg = V.counts();
    uint64_t Before = 0, After = 0;
    for (const Function &F : M.Funcs)
      for (const Block &B : F.Blocks)
        for (const Inst &I : B.Insts)
          Before += isHeapAccess(I.K) && I.NeedsBarrier;
    applyVerdicts(M, V, O.Nait, O.ThreadLocal);
    for (const Function &F : M.Funcs)
      for (const Block &B : F.Blocks)
        for (const Inst &I : B.Insts)
          After += isHeapAccess(I.K) && I.NeedsBarrier;
    Stats.RemovedByWholeProg = Before - After;
  }

  if (O.IntraprocEscape)
    Stats.RemovedByEscape = runIntraprocEscape(M);

  if (O.Aggregate)
    Stats.AggregationGroups = runBarrierAggregation(M);

  for (const Function &F : M.Funcs)
    for (const Block &B : F.Blocks)
      for (const Inst &I : B.Insts)
        if (isHeapAccess(I.K))
          Stats.BarriersAfter += I.NeedsBarrier;
  return Stats;
}

Module satm::tc::compile(const std::string &Source, const PassOptions &O,
                         Diag &D, PipelineStats *Stats) {
  Program P = parse(Source, D);
  if (D.hasErrors())
    return {};
  analyze(P, D);
  if (D.hasErrors())
    return {};
  Module M = lower(P);
  assert(verifyModule(M).empty() && "lowering produced invalid IR");
  PipelineStats S = runPasses(M, O);
  assert(verifyModule(M).empty() && "a pass produced invalid IR");
  if (Stats)
    *Stats = S;
  return M;
}
