//===- tc/Analyses.cpp - NAIT and thread-local analyses ------------------===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "tc/Analyses.h"

#include <deque>

using namespace satm;
using namespace satm::tc;
using namespace satm::tc::ir;

namespace {

/// The abstract objects an access instruction may touch, including the
/// pseudo-objects standing for static cells.
void accessedObjects(const Module &M, const PointsTo &P, uint32_t Func,
                     const Inst &I, Ctx C, std::vector<uint32_t> &Out) {
  (void)M;
  Out.clear();
  switch (I.K) {
  case Op::LoadField:
  case Op::StoreField:
  case Op::LoadElem:
  case Op::StoreElem:
    for (uint32_t O : P.pts(Func, I.A, C))
      Out.push_back(O);
    return;
  case Op::LoadStatic:
  case Op::StoreStatic:
    Out.push_back(P.staticObjId(I.Index));
    return;
  default:
    return;
  }
}

} // namespace

BarrierVerdicts satm::tc::analyzeBarriers(const Module &M, const PointsTo &P) {
  uint32_t NumObjs = P.numObjects();
  std::vector<bool> ReadInTxn(NumObjs, false);
  std::vector<bool> WrittenInTxn(NumObjs, false);

  //===------------------------------------------------------------------===
  // Pass 1 (§5.2): how is each abstract object accessed inside
  // transactions? An instruction is "in a transaction" when its effective
  // context is In — either its enclosing function instance is analyzed
  // under In, or it is lexically inside an atomic block.
  //===------------------------------------------------------------------===
  std::vector<uint32_t> Objs;
  for (uint32_t Func = 0; Func < M.Funcs.size(); ++Func) {
    for (Ctx C : {Ctx::Out, Ctx::In}) {
      if (!P.isReachable(Func, C))
        continue;
      for (const Block &B : M.Funcs[Func].Blocks) {
        for (const Inst &I : B.Insts) {
          if (!isHeapAccess(I.K) || effectiveCtx(C, I) != Ctx::In)
            continue;
          accessedObjects(M, P, Func, I, C, Objs);
          for (uint32_t O : Objs) {
            if (isHeapStore(I.K))
              WrittenInTxn[O] = true;
            else
              ReadInTxn[O] = true;
          }
        }
      }
    }
  }

  //===------------------------------------------------------------------===
  // Thread-escape closure for TL (§5.4): an object escapes if it flows
  // into a static cell or a spawned thread's parameters, or is reachable
  // through the fields of an escaping object.
  //===------------------------------------------------------------------===
  std::vector<bool> Escaped(NumObjs, false);
  std::deque<uint32_t> Work;
  auto MarkEscaped = [&](uint32_t O) {
    if (O < NumObjs && !Escaped[O]) {
      Escaped[O] = true;
      Work.push_back(O);
    }
  };
  for (uint32_t S = 0; S < M.Statics.size(); ++S) {
    MarkEscaped(P.staticObjId(S));
    for (uint32_t O : P.staticPts(S))
      MarkEscaped(O);
  }
  for (uint32_t O : P.spawnedObjects())
    MarkEscaped(O);
  uint32_t MaxSlots = 0;
  for (const ClassInfo &CI : M.Classes)
    MaxSlots = std::max(MaxSlots, CI.NumSlots);
  while (!Work.empty()) {
    uint32_t O = Work.front();
    Work.pop_front();
    // Everything reachable through any field of an escaping object escapes.
    for (uint32_t Slot = 0; Slot < MaxSlots; ++Slot)
      for (uint32_t Next : P.fieldPts(O, Slot))
        MarkEscaped(Next);
    for (uint32_t Next : P.fieldPts(O, PointsTo::ElemField))
      MarkEscaped(Next);
  }

  //===------------------------------------------------------------------===
  // Pass 2 (§5.2): verdicts for each reachable non-transactional access.
  //===------------------------------------------------------------------===
  BarrierVerdicts V;
  for (uint32_t Func = 0; Func < M.Funcs.size(); ++Func) {
    if (!P.isReachable(Func, Ctx::Out))
      continue;
    const Function &F = M.Funcs[Func];
    for (uint32_t BI = 0; BI < F.Blocks.size(); ++BI) {
      const Block &B = F.Blocks[BI];
      for (uint32_t II = 0; II < B.Insts.size(); ++II) {
        const Inst &I = B.Insts[II];
        if (!isHeapAccess(I.K) || I.InAtomic)
          continue; // Only non-transactional executions carry barriers.
        bool Store = isHeapStore(I.K);
        accessedObjects(M, P, Func, I, Ctx::Out, Objs);
        bool NaitOk = true, TlOk = true;
        for (uint32_t O : Objs) {
          if (WrittenInTxn[O] || (Store && ReadInTxn[O]))
            NaitOk = false;
          if (Escaped[O])
            TlOk = false;
        }
        V.Accesses.push_back({Func, BI, II});
        V.IsStore.push_back(Store);
        V.NaitRemovable.push_back(NaitOk);
        V.TlRemovable.push_back(TlOk);
      }
    }
  }
  return V;
}

BarrierVerdicts::Counts BarrierVerdicts::counts() const {
  Counts C;
  for (size_t I = 0; I < Accesses.size(); ++I) {
    bool Store = IsStore[I];
    bool N = NaitRemovable[I], T = TlRemovable[I];
    (Store ? C.WriteTotal : C.ReadTotal)++;
    if (N)
      (Store ? C.WriteNait : C.ReadNait)++;
    if (T)
      (Store ? C.WriteTl : C.ReadTl)++;
    if (N && !T)
      (Store ? C.WriteNaitNotTl : C.ReadNaitNotTl)++;
    if (T && !N)
      (Store ? C.WriteTlNotNait : C.ReadTlNotNait)++;
    if (N || T)
      (Store ? C.WriteEither : C.ReadEither)++;
  }
  return C;
}

void satm::tc::applyVerdicts(Module &M, const BarrierVerdicts &V,
                             bool UseNait, bool UseTl) {
  for (size_t I = 0; I < V.Accesses.size(); ++I) {
    bool Remove = (UseNait && V.NaitRemovable[I]) || (UseTl && V.TlRemovable[I]);
    if (!Remove)
      continue;
    const InstRef &R = V.Accesses[I];
    M.Funcs[R.Func].Blocks[R.Block].Insts[R.Index].NeedsBarrier = false;
  }
}
