//===- tc/Lexer.h - TranC lexical analysis ---------------------*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokens and the hand-written lexer for TranC, the managed transactional
/// language that stands in for the paper's Java substrate (DESIGN.md §1).
///
//===----------------------------------------------------------------------===//

#ifndef SATM_TC_LEXER_H
#define SATM_TC_LEXER_H

#include "tc/Diag.h"

#include <cstdint>
#include <string>
#include <vector>

namespace satm {
namespace tc {

enum class TokKind : uint8_t {
  Eof,
  Ident,
  IntLit,
  StrLit,
  // Keywords.
  KwClass,
  KwStatic,
  KwFn,
  KwVar,
  KwIf,
  KwElse,
  KwWhile,
  KwReturn,
  KwAtomic,
  KwOpen,
  KwRetry,
  KwSpawn,
  KwJoin,
  KwNew,
  KwNull,
  KwTrue,
  KwFalse,
  KwInt,
  KwBool,
  KwPrint,
  KwPrints,
  KwLen,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Colon,
  Comma,
  Dot,
  Assign,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  NotEq,
  AndAnd,
  OrOr,
  Not,
};

/// Printable name of a token kind, for diagnostics.
const char *tokKindName(TokKind K);

struct Token {
  TokKind Kind = TokKind::Eof;
  Loc Where;
  std::string Text;  ///< Identifier spelling or string-literal contents.
  int64_t IntValue = 0;
};

/// Lexes \p Source into a token vector ending in Eof. Lexical errors are
/// reported to \p D; offending characters are skipped.
std::vector<Token> lex(const std::string &Source, Diag &D);

} // namespace tc
} // namespace satm

#endif // SATM_TC_LEXER_H
