//===- tc/Ast.h - TranC abstract syntax tree -------------------*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST and type representation for TranC. The language is deliberately
/// Java-shaped where the paper needs it to be: heap classes with typed
/// fields, static fields, arrays, first-class `atomic` blocks with `retry`,
/// and `spawn`/`join` threading — the surface area §§4-6's analyses reason
/// about.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_TC_AST_H
#define SATM_TC_AST_H

#include "tc/Diag.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace satm {
namespace tc {

//===----------------------------------------------------------------------===
// Types.
//===----------------------------------------------------------------------===

/// A TranC type, as a value. Class types refer to classes by name;
/// resolution to declarations happens in Sema.
struct Type {
  enum KindTy : uint8_t {
    Void,     ///< Function with no return value.
    Int,      ///< 64-bit signed integer.
    Bool,     ///< Boolean (stored as a word).
    Class,    ///< Reference to an instance of ClassName.
    IntArray, ///< int[].
    RefArray, ///< ClassName[].
    Null,     ///< Type of the `null` literal; compatible with any ref.
  };

  KindTy Kind = Void;
  std::string ClassName; ///< For Class and RefArray.

  static Type voidTy() { return {Void, {}}; }
  static Type intTy() { return {Int, {}}; }
  static Type boolTy() { return {Bool, {}}; }
  static Type classTy(std::string Name) { return {Class, std::move(Name)}; }
  static Type intArrayTy() { return {IntArray, {}}; }
  static Type refArrayTy(std::string Elem) {
    return {RefArray, std::move(Elem)};
  }
  static Type nullTy() { return {Null, {}}; }

  bool isRef() const {
    return Kind == Class || Kind == IntArray || Kind == RefArray ||
           Kind == Null;
  }
  bool isArray() const { return Kind == IntArray || Kind == RefArray; }

  bool operator==(const Type &O) const {
    return Kind == O.Kind && ClassName == O.ClassName;
  }
  bool operator!=(const Type &O) const { return !(*this == O); }

  /// True if a value of type \p From may be assigned to this type.
  bool accepts(const Type &From) const {
    if (*this == From)
      return true;
    return isRef() && From.Kind == Null;
  }

  std::string str() const {
    switch (Kind) {
    case Void:
      return "void";
    case Int:
      return "int";
    case Bool:
      return "bool";
    case Class:
      return ClassName;
    case IntArray:
      return "int[]";
    case RefArray:
      return ClassName + "[]";
    case Null:
      return "null";
    }
    return "?";
  }
};

//===----------------------------------------------------------------------===
// Expressions.
//===----------------------------------------------------------------------===

enum class BinOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  And, ///< Short-circuit &&.
  Or,  ///< Short-circuit ||.
};

enum class UnOp : uint8_t { Neg, Not };

struct Expr {
  enum class Kind : uint8_t {
    IntLit,
    BoolLit,
    NullLit,
    VarRef,
    StaticRef, ///< Resolved by Sema from VarRef when it names a static.
    Binary,
    Unary,
    Call,
    NewObject,
    NewArray,
    FieldAccess,
    IndexAccess,
    Len,
    Spawn,
  };

  Expr(Kind K, Loc Where) : K(K), Where(Where) {}
  virtual ~Expr() = default;

  Kind K;
  Loc Where;
  Type Ty; ///< Filled in by Sema.
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLitExpr : Expr {
  IntLitExpr(Loc W, int64_t Value) : Expr(Kind::IntLit, W), Value(Value) {}
  int64_t Value;
};

struct BoolLitExpr : Expr {
  BoolLitExpr(Loc W, bool Value) : Expr(Kind::BoolLit, W), Value(Value) {}
  bool Value;
};

struct NullLitExpr : Expr {
  explicit NullLitExpr(Loc W) : Expr(Kind::NullLit, W) {}
};

/// Sema encodes "this VarRef actually names a static" by setting this bit
/// in VarRefExpr::LocalIndex, with the static's index in the low bits.
inline constexpr uint32_t StaticRefBit = 0x80000000u;

/// A name use: a local variable, a parameter, or (resolved by Sema via
/// StaticRefBit) a static field.
struct VarRefExpr : Expr {
  VarRefExpr(Loc W, std::string Name)
      : Expr(Kind::VarRef, W), Name(std::move(Name)) {}
  std::string Name;
  uint32_t LocalIndex = 0; ///< Filled in by Sema; see StaticRefBit.

  bool isStatic() const { return (LocalIndex & StaticRefBit) != 0; }
  uint32_t staticIndex() const { return LocalIndex & ~StaticRefBit; }
};

struct StaticRefExpr : Expr {
  StaticRefExpr(Loc W, std::string Name)
      : Expr(Kind::StaticRef, W), Name(std::move(Name)) {}
  std::string Name;
  uint32_t StaticIndex = 0; ///< Filled in by Sema.
};

struct BinaryExpr : Expr {
  BinaryExpr(Loc W, BinOp Op, ExprPtr Lhs, ExprPtr Rhs)
      : Expr(Kind::Binary, W), Op(Op), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}
  BinOp Op;
  ExprPtr Lhs, Rhs;
};

struct UnaryExpr : Expr {
  UnaryExpr(Loc W, UnOp Op, ExprPtr Sub)
      : Expr(Kind::Unary, W), Op(Op), Sub(std::move(Sub)) {}
  UnOp Op;
  ExprPtr Sub;
};

struct CallExpr : Expr {
  CallExpr(Loc W, std::string Callee, std::vector<ExprPtr> Args)
      : Expr(Kind::Call, W), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
  std::string Callee;
  std::vector<ExprPtr> Args;
};

struct NewObjectExpr : Expr {
  NewObjectExpr(Loc W, std::string ClassName)
      : Expr(Kind::NewObject, W), ClassName(std::move(ClassName)) {}
  std::string ClassName;
};

struct NewArrayExpr : Expr {
  NewArrayExpr(Loc W, Type ElemTy, ExprPtr Length)
      : Expr(Kind::NewArray, W), ElemTy(std::move(ElemTy)),
        Length(std::move(Length)) {}
  Type ElemTy;
  ExprPtr Length;
};

struct FieldAccessExpr : Expr {
  FieldAccessExpr(Loc W, ExprPtr Base, std::string FieldName)
      : Expr(Kind::FieldAccess, W), Base(std::move(Base)),
        FieldName(std::move(FieldName)) {}
  ExprPtr Base;
  std::string FieldName;
  uint32_t SlotIndex = 0; ///< Filled in by Sema.
};

struct IndexAccessExpr : Expr {
  IndexAccessExpr(Loc W, ExprPtr Base, ExprPtr Index)
      : Expr(Kind::IndexAccess, W), Base(std::move(Base)),
        Index(std::move(Index)) {}
  ExprPtr Base, Index;
};

struct LenExpr : Expr {
  LenExpr(Loc W, ExprPtr Base) : Expr(Kind::Len, W), Base(std::move(Base)) {}
  ExprPtr Base;
};

/// spawn f(args): starts f on a new thread; evaluates to an int handle.
struct SpawnExpr : Expr {
  SpawnExpr(Loc W, std::string Callee, std::vector<ExprPtr> Args)
      : Expr(Kind::Spawn, W), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
  std::string Callee;
  std::vector<ExprPtr> Args;
};

//===----------------------------------------------------------------------===
// Statements.
//===----------------------------------------------------------------------===

struct Stmt {
  enum class Kind : uint8_t {
    Block,
    VarDecl,
    Assign,
    If,
    While,
    Return,
    ExprStmt,
    Atomic,
    Open,
    Retry,
    Join,
    Print,
    Prints,
  };

  Stmt(Kind K, Loc Where) : K(K), Where(Where) {}
  virtual ~Stmt() = default;

  Kind K;
  Loc Where;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct BlockStmt : Stmt {
  explicit BlockStmt(Loc W) : Stmt(Kind::Block, W) {}
  std::vector<StmtPtr> Stmts;
};

struct VarDeclStmt : Stmt {
  VarDeclStmt(Loc W, std::string Name, Type DeclaredTy, ExprPtr Init)
      : Stmt(Kind::VarDecl, W), Name(std::move(Name)),
        DeclaredTy(std::move(DeclaredTy)), Init(std::move(Init)) {}
  std::string Name;
  Type DeclaredTy; ///< Void if the type is inferred from Init.
  ExprPtr Init;
  uint32_t LocalIndex = 0; ///< Filled in by Sema.
};

struct AssignStmt : Stmt {
  AssignStmt(Loc W, ExprPtr Target, ExprPtr Value)
      : Stmt(Kind::Assign, W), Target(std::move(Target)),
        Value(std::move(Value)) {}
  ExprPtr Target; ///< VarRef, StaticRef, FieldAccess or IndexAccess.
  ExprPtr Value;
};

struct IfStmt : Stmt {
  IfStmt(Loc W, ExprPtr Cond, StmtPtr Then, StmtPtr Else)
      : Stmt(Kind::If, W), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else; ///< May be null.
};

struct WhileStmt : Stmt {
  WhileStmt(Loc W, ExprPtr Cond, StmtPtr Body)
      : Stmt(Kind::While, W), Cond(std::move(Cond)), Body(std::move(Body)) {}
  ExprPtr Cond;
  StmtPtr Body;
};

struct ReturnStmt : Stmt {
  ReturnStmt(Loc W, ExprPtr Value)
      : Stmt(Kind::Return, W), Value(std::move(Value)) {}
  ExprPtr Value; ///< Null for `return;`.
};

struct ExprStmt : Stmt {
  ExprStmt(Loc W, ExprPtr E) : Stmt(Kind::ExprStmt, W), E(std::move(E)) {}
  ExprPtr E;
};

/// atomic { ... } — the paper's first-class transaction construct.
struct AtomicStmt : Stmt {
  AtomicStmt(Loc W, StmtPtr Body)
      : Stmt(Kind::Atomic, W), Body(std::move(Body)) {}
  StmtPtr Body;
};

/// open { ... } — an open-nested transaction (§3, [45]): commits its
/// writes when the block completes, independently of the enclosing
/// transaction. Valid only inside atomic.
struct OpenStmt : Stmt {
  OpenStmt(Loc W, StmtPtr Body) : Stmt(Kind::Open, W), Body(std::move(Body)) {}
  StmtPtr Body;
};

/// retry; — user-initiated retry (§3, [1]); valid only inside atomic.
struct RetryStmt : Stmt {
  explicit RetryStmt(Loc W) : Stmt(Kind::Retry, W) {}
};

struct JoinStmt : Stmt {
  JoinStmt(Loc W, ExprPtr Handle)
      : Stmt(Kind::Join, W), Handle(std::move(Handle)) {}
  ExprPtr Handle;
};

struct PrintStmt : Stmt {
  PrintStmt(Loc W, ExprPtr Value)
      : Stmt(Kind::Print, W), Value(std::move(Value)) {}
  ExprPtr Value;
};

struct PrintsStmt : Stmt {
  PrintsStmt(Loc W, std::string Text)
      : Stmt(Kind::Prints, W), Text(std::move(Text)) {}
  std::string Text;
};

//===----------------------------------------------------------------------===
// Declarations.
//===----------------------------------------------------------------------===

struct FieldDecl {
  std::string Name;
  Type Ty;
  Loc Where;
  uint32_t SlotIndex = 0;
};

struct ClassDecl {
  std::string Name;
  Loc Where;
  std::vector<FieldDecl> Fields;

  const FieldDecl *findField(const std::string &N) const {
    for (const FieldDecl &F : Fields)
      if (F.Name == N)
        return &F;
    return nullptr;
  }
};

struct StaticDecl {
  std::string Name;
  Type Ty;
  Loc Where;
  uint32_t Index = 0;
};

struct ParamDecl {
  std::string Name;
  Type Ty;
  Loc Where;
};

struct FuncDecl {
  std::string Name;
  Loc Where;
  std::vector<ParamDecl> Params;
  Type RetTy;
  std::unique_ptr<BlockStmt> Body;
  uint32_t NumLocals = 0; ///< Params + declared vars; filled in by Sema.
};

/// A parsed (and, after Sema, resolved) TranC compilation unit.
struct Program {
  std::vector<std::unique_ptr<ClassDecl>> Classes;
  std::vector<std::unique_ptr<StaticDecl>> Statics;
  std::vector<std::unique_ptr<FuncDecl>> Funcs;

  const ClassDecl *findClass(const std::string &N) const {
    for (const auto &C : Classes)
      if (C->Name == N)
        return C.get();
    return nullptr;
  }
  const StaticDecl *findStatic(const std::string &N) const {
    for (const auto &S : Statics)
      if (S->Name == N)
        return S.get();
    return nullptr;
  }
  const FuncDecl *findFunc(const std::string &N) const {
    for (const auto &F : Funcs)
      if (F->Name == N)
        return F.get();
    return nullptr;
  }
};

} // namespace tc
} // namespace satm

#endif // SATM_TC_AST_H
