//===- tc/PointsTo.h - Context-aware Andersen points-to --------*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole-program pointer analysis of §5.1: a sound, field-sensitive,
/// flow-insensitive Andersen-style inclusion analysis with the paper's
/// novel form of context-sensitivity — the context is just "in transaction"
/// or "not in transaction", so each function is analyzed in at most two
/// contexts ("efficiency is within a factor of two of 0CFA"). Abstract heap
/// objects are (allocation site, context) pairs: the paper's heap
/// specialization. All calls inherit the caller's effective context except
/// that instructions lexically inside `atomic` always run In; spawned
/// thread entry points start Out.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_TC_POINTSTO_H
#define SATM_TC_POINTSTO_H

#include "tc/Ir.h"

#include <unordered_map>
#include <unordered_set>

namespace satm {
namespace tc {

/// The two analysis contexts of §5.1.
enum class Ctx : uint8_t { Out = 0, In = 1 };

/// Effective context of instruction \p I inside a function instance
/// analyzed under \p C: lexical atomic always means In.
inline Ctx effectiveCtx(Ctx C, const ir::Inst &I) {
  return (C == Ctx::In || I.InAtomic) ? Ctx::In : Ctx::Out;
}

/// Whole-program points-to analysis result.
class PointsTo {
public:
  using ObjSet = std::unordered_set<uint32_t>;

  /// Runs the analysis over \p M (call graph construction + constraint
  /// generation + fixpoint solve).
  explicit PointsTo(const ir::Module &M);

  /// Abstract object id for (allocation site, context): the paper's heap
  /// specialization.
  uint32_t objId(uint32_t Site, Ctx C) const {
    return Site * 2 + static_cast<uint32_t>(C);
  }

  /// Pseudo-object id representing the cell of static \p StaticIndex.
  /// Statics are memory too: their accesses carry barriers.
  uint32_t staticObjId(uint32_t StaticIndex) const {
    return NumHeapObjs + StaticIndex;
  }

  /// Total abstract objects (heap objects then static cells).
  uint32_t numObjects() const { return NumHeapObjs + NumStatics; }

  /// True if the function was found reachable under context \p C (main and
  /// spawn entries seed Out; atomic bodies and their callees are In).
  bool isReachable(uint32_t Func, Ctx C) const {
    return Reachable.count(instKey(Func, C)) != 0;
  }

  /// Points-to set of register \p R of function \p Func under \p C.
  const ObjSet &pts(uint32_t Func, ir::RegId R, Ctx C) const {
    auto It = VarSets.find(varKey(Func, R, C));
    return It == VarSets.end() ? Empty : It->second;
  }

  /// Points-to set of the cell of static \p StaticIndex.
  const ObjSet &staticPts(uint32_t StaticIndex) const {
    auto It = StaticSets.find(StaticIndex);
    return It == StaticSets.end() ? Empty : It->second;
  }

  /// Points-to set of field \p Slot of abstract object \p Obj (array
  /// elements use the single summary slot ElemField).
  static constexpr uint32_t ElemField = ~0u;
  const ObjSet &fieldPts(uint32_t Obj, uint32_t Slot) const {
    auto It = FieldSets.find(fieldKey(Obj, Slot));
    return It == FieldSets.end() ? Empty : It->second;
  }

  /// Objects flowing into spawned-thread parameters (thread escape seeds
  /// for the thread-local analysis).
  const ObjSet &spawnedObjects() const { return SpawnSeeds; }

private:
  static uint64_t instKey(uint32_t Func, Ctx C) {
    return (static_cast<uint64_t>(Func) << 1) | static_cast<uint64_t>(C);
  }
  static uint64_t varKey(uint32_t Func, ir::RegId R, Ctx C) {
    return (static_cast<uint64_t>(Func) << 33) |
           (static_cast<uint64_t>(R) << 1) | static_cast<uint64_t>(C);
  }
  static uint64_t fieldKey(uint32_t Obj, uint32_t Slot) {
    return (static_cast<uint64_t>(Obj) << 32) | Slot;
  }

  /// Return-value points-to sets live in VarSets under a reserved
  /// pseudo-register shared by all functions.
  static constexpr ir::RegId RetPseudoReg = 0x7FFFFFFFu;
  ObjSet &retSetFor(uint32_t Func, Ctx C) {
    return VarSets[varKey(Func, RetPseudoReg, C)];
  }

  void solve(const ir::Module &M);

  uint32_t NumHeapObjs = 0;
  uint32_t NumStatics = 0;
  std::unordered_set<uint64_t> Reachable;
  std::unordered_map<uint64_t, ObjSet> VarSets;
  std::unordered_map<uint32_t, ObjSet> StaticSets;
  std::unordered_map<uint64_t, ObjSet> FieldSets;
  ObjSet SpawnSeeds;
  ObjSet Empty;
};

} // namespace tc
} // namespace satm

#endif // SATM_TC_POINTSTO_H
