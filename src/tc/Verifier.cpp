//===- tc/Verifier.cpp - IR structural verifier ---------------------------===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "tc/Verifier.h"

#include <sstream>

using namespace satm;
using namespace satm::tc;
using namespace satm::tc::ir;

namespace {

class VerifierImpl {
public:
  explicit VerifierImpl(const Module &M) : M(M) {}

  std::vector<std::string> run() {
    for (const Function &F : M.Funcs)
      verifyFunction(F);
    if (M.MainFunc != ~0u && M.MainFunc >= M.Funcs.size())
      fail(nullptr, nullptr, "MainFunc index out of range");
    return std::move(Problems);
  }

private:
  void fail(const Function *F, const Inst *I, const std::string &Msg) {
    std::ostringstream OS;
    if (F)
      OS << "in " << F->Name << ": ";
    if (I)
      OS << "at " << I->Where.Line << ":" << I->Where.Col << ": ";
    OS << Msg;
    Problems.push_back(OS.str());
  }

  bool isTerminator(Op K) const {
    return K == Op::Jump || K == Op::Branch || K == Op::Ret;
  }

  bool isRegionEnd(Op K) const {
    return K == Op::AtomicEnd || K == Op::OpenEnd;
  }

  void checkReg(const Function &F, const Inst &I, RegId R,
                const char *What) {
    if (R >= F.NumRegs)
      fail(&F, &I, std::string(What) + " register r" + std::to_string(R) +
                       " out of range (NumRegs=" +
                       std::to_string(F.NumRegs) + ")");
  }

  void checkBlock(const Function &F, const Inst &I, BlockId B) {
    if (B >= F.Blocks.size())
      fail(&F, &I, "block target b" + std::to_string(B) + " out of range");
  }

  void verifyFunction(const Function &F) {
    if (F.ParamIsRef.size() != F.NumParams)
      fail(&F, nullptr, "ParamIsRef size disagrees with NumParams");
    if (F.NumParams > F.NumRegs)
      fail(&F, nullptr, "more parameters than registers");
    if (F.Blocks.empty()) {
      fail(&F, nullptr, "function has no blocks");
      return;
    }
    for (const Block &B : F.Blocks)
      verifyBlock(F, B);
  }

  void verifyBlock(const Function &F, const Block &B) {
    for (size_t Idx = 0; Idx < B.Insts.size(); ++Idx) {
      const Inst &I = B.Insts[Idx];
      bool Last = Idx + 1 == B.Insts.size();
      if (isTerminator(I.K) && !Last)
        fail(&F, &I, "terminator in the middle of a block");
      verifyInst(F, I);
    }
    if (!B.Insts.empty()) {
      const Inst &Last = B.Insts.back();
      if (!isTerminator(Last.K) && !isRegionEnd(Last.K))
        fail(&F, &Last, "block does not end with a terminator");
    }
    verifyAggregationGroups(F, B);
  }

  void verifyInst(const Function &F, const Inst &I) {
    if (!isHeapAccess(I.K) && I.NeedsBarrier)
      fail(&F, &I, "barrier annotation on a non-heap-access instruction");
    if (!isHeapAccess(I.K) && I.Agg != AggRole::None)
      fail(&F, &I, "aggregation role on a non-heap-access instruction");
    switch (I.K) {
    case Op::ConstInt:
      checkReg(F, I, I.Dst, "destination");
      break;
    case Op::Move:
    case Op::Neg:
    case Op::Not:
    case Op::ArrayLen:
      checkReg(F, I, I.Dst, "destination");
      checkReg(F, I, I.A, "source");
      break;
    case Op::Bin:
      checkReg(F, I, I.Dst, "destination");
      checkReg(F, I, I.A, "lhs");
      checkReg(F, I, I.B, "rhs");
      if (I.BOp == BinOp::And || I.BOp == BinOp::Or)
        fail(&F, &I, "short-circuit operator survived lowering");
      break;
    case Op::NewObject:
      checkReg(F, I, I.Dst, "destination");
      if (I.Index >= M.Classes.size())
        fail(&F, &I, "class index out of range");
      if (I.Index2 >= M.NumAllocSites)
        fail(&F, &I, "allocation site out of range");
      break;
    case Op::NewArray:
      checkReg(F, I, I.Dst, "destination");
      checkReg(F, I, I.A, "length");
      if (I.Index2 >= M.NumAllocSites)
        fail(&F, &I, "allocation site out of range");
      break;
    case Op::LoadField:
      checkReg(F, I, I.Dst, "destination");
      checkReg(F, I, I.A, "base");
      break;
    case Op::StoreField:
      checkReg(F, I, I.A, "base");
      checkReg(F, I, I.B, "value");
      break;
    case Op::LoadStatic:
      checkReg(F, I, I.Dst, "destination");
      if (I.Index >= M.Statics.size())
        fail(&F, &I, "static index out of range");
      break;
    case Op::StoreStatic:
      checkReg(F, I, I.A, "value");
      if (I.Index >= M.Statics.size())
        fail(&F, &I, "static index out of range");
      break;
    case Op::LoadElem:
      checkReg(F, I, I.Dst, "destination");
      checkReg(F, I, I.A, "base");
      checkReg(F, I, I.B, "index");
      break;
    case Op::StoreElem:
      checkReg(F, I, I.A, "base");
      checkReg(F, I, I.B, "index");
      checkReg(F, I, I.C, "value");
      break;
    case Op::Call:
    case Op::Spawn: {
      checkReg(F, I, I.Dst, "destination");
      for (RegId A : I.Args)
        checkReg(F, I, A, "argument");
      if (I.Index >= M.Funcs.size()) {
        fail(&F, &I, "callee index out of range");
        break;
      }
      const Function &Callee = M.Funcs[I.Index];
      if (I.Args.size() != Callee.NumParams)
        fail(&F, &I, "call to " + Callee.Name + " passes " +
                         std::to_string(I.Args.size()) + " arguments, " +
                         "expects " + std::to_string(Callee.NumParams));
      break;
    }
    case Op::Join:
    case Op::Print:
      checkReg(F, I, I.A, "operand");
      break;
    case Op::Prints:
      if (I.Index >= M.Strings.size())
        fail(&F, &I, "string index out of range");
      break;
    case Op::Retry:
      if (!I.InAtomic)
        fail(&F, &I, "retry outside an atomic region");
      break;
    case Op::AtomicBegin: {
      checkBlock(F, I, I.Index);
      if (I.Index < F.Blocks.size()) {
        const Block &End = F.Blocks[I.Index];
        if (End.Insts.empty() || End.Insts[0].K != Op::AtomicEnd)
          fail(&F, &I, "AtomicBegin does not name an AtomicEnd block");
      }
      break;
    }
    case Op::AtomicEnd:
      break;
    case Op::OpenBegin: {
      checkBlock(F, I, I.Index);
      if (!I.InAtomic)
        fail(&F, &I, "open region outside an atomic region");
      if (I.Index < F.Blocks.size()) {
        const Block &End = F.Blocks[I.Index];
        if (End.Insts.empty() || End.Insts[0].K != Op::OpenEnd)
          fail(&F, &I, "OpenBegin does not name an OpenEnd block");
      }
      break;
    }
    case Op::OpenEnd:
      break;
    case Op::Jump:
      checkBlock(F, I, I.Index);
      break;
    case Op::Branch:
      checkReg(F, I, I.A, "condition");
      checkBlock(F, I, I.Index);
      checkBlock(F, I, I.Index2);
      break;
    case Op::Ret:
      if (I.Imm)
        checkReg(F, I, I.A, "return value");
      break;
    }
  }

  /// Aggregation groups must be Open (Members)* Close over one base
  /// register, within one block, with only transparent instructions in
  /// between and no redefinition of the base.
  void verifyAggregationGroups(const Function &F, const Block &B) {
    bool InGroup = false;
    RegId Base = 0;
    for (const Inst &I : B.Insts) {
      if (I.Agg == AggRole::Open) {
        if (InGroup)
          fail(&F, &I, "nested aggregation group");
        InGroup = true;
        Base = I.A;
        continue;
      }
      if (I.Agg == AggRole::Member || I.Agg == AggRole::Close) {
        if (!InGroup)
          fail(&F, &I, "aggregation member outside a group");
        else if (I.A != Base)
          fail(&F, &I, "aggregation group spans multiple objects");
        if (I.Agg == AggRole::Close)
          InGroup = false;
        continue;
      }
      if (!InGroup)
        continue;
      // Inside a group: only pure register computation that does not
      // redefine the base may appear.
      switch (I.K) {
      case Op::ConstInt:
      case Op::Move:
      case Op::Bin:
      case Op::Neg:
      case Op::Not:
      case Op::ArrayLen:
        if (I.Dst == Base)
          fail(&F, &I, "aggregation base redefined inside the group");
        break;
      default:
        fail(&F, &I, "non-transparent instruction inside an aggregation "
                     "group");
      }
    }
    if (InGroup)
      fail(&F, nullptr, "aggregation group not closed within its block");
  }

  const Module &M;
  std::vector<std::string> Problems;
};

} // namespace

std::vector<std::string> satm::tc::verifyModule(const Module &M) {
  return VerifierImpl(M).run();
}
