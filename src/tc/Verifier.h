//===- tc/Verifier.h - IR structural verifier ------------------*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural verifier for TranC IR modules. Lowering and every
/// optimization pass must leave the module verifiable; the pipeline runs
/// the verifier after each stage in debug builds and the test suite runs
/// it explicitly. Checked invariants:
///
///  - every register/block/function/class/static/string index in range;
///  - every nonempty reachable block ends with a terminator, and no
///    terminator appears mid-block;
///  - AtomicBegin names a block whose first instruction is AtomicEnd, and
///    begins/ends are balanced along every path (single-entry/exit);
///  - barrier annotations only on heap accesses; aggregation groups are
///    well-formed (Open..Members..Close, same base register, no redefinition
///    of the base, no intervening calls or terminators, within one block);
///  - call/spawn argument counts match the callee.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_TC_VERIFIER_H
#define SATM_TC_VERIFIER_H

#include "tc/Ir.h"

#include <string>
#include <vector>

namespace satm {
namespace tc {

/// Verifies \p M. Returns the list of violations (empty = valid).
std::vector<std::string> verifyModule(const ir::Module &M);

} // namespace tc
} // namespace satm

#endif // SATM_TC_VERIFIER_H
