//===- tc/Diag.h - TranC diagnostics ---------------------------*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations and the diagnostic sink shared by the TranC lexer,
/// parser and semantic analysis. Errors are collected (not thrown); a
/// pipeline stage checks hasErrors() before proceeding.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_TC_DIAG_H
#define SATM_TC_DIAG_H

#include <cstdint>
#include <string>
#include <vector>

namespace satm {
namespace tc {

/// 1-based line/column source position.
struct Loc {
  uint32_t Line = 0;
  uint32_t Col = 0;
};

/// One reported problem.
struct Diagnostic {
  Loc Where;
  std::string Message;
};

/// Collects diagnostics for one compilation.
class Diag {
public:
  /// Reports an error at \p Where. Messages follow the LLVM style: start
  /// lowercase, no trailing period.
  void error(Loc Where, std::string Message) {
    Errors.push_back({Where, std::move(Message)});
  }

  bool hasErrors() const { return !Errors.empty(); }
  const std::vector<Diagnostic> &errors() const { return Errors; }

  /// All diagnostics rendered as "line:col: error: message" lines.
  std::string str() const {
    std::string Out;
    for (const Diagnostic &D : Errors) {
      Out += std::to_string(D.Where.Line) + ":" + std::to_string(D.Where.Col) +
             ": error: " + D.Message + "\n";
    }
    return Out;
  }

private:
  std::vector<Diagnostic> Errors;
};

} // namespace tc
} // namespace satm

#endif // SATM_TC_DIAG_H
