//===- tc/Interp.cpp - Threaded TranC interpreter -------------------------===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "tc/Interp.h"

#include "stm/Barriers.h"
#include "stm/Txn.h"

#include <functional>
#include <optional>

using namespace satm;
using namespace satm::tc;
using namespace satm::tc::ir;
using rt::Object;
using stm::Word;

namespace {

/// Thread-local interpreter context: transactional print buffering and the
/// step budget are per executing thread.
struct ThreadCtx {
  std::string PendingOut; ///< print output buffered until commit.
  unsigned AtomicDepth = 0;
  uint64_t Steps = 0;
};

ThreadCtx &threadCtx() {
  thread_local ThreadCtx C;
  return C;
}

} // namespace

Interp::Interp(const Module &M, Options O) : M(M), Opts(O) {
  for (const ClassInfo &C : M.Classes)
    ClassTypes.push_back(std::make_unique<rt::TypeDescriptor>(
        C.Name, C.NumSlots, C.RefSlots));
  IntArrayType =
      std::make_unique<rt::TypeDescriptor>("int[]", rt::TypeKind::IntArray);
  RefArrayType =
      std::make_unique<rt::TypeDescriptor>("ref[]", rt::TypeKind::RefArray);
  // Statics are public cells; each static is its own one-slot object so
  // each carries its own transaction record.
  for (const StaticInfo &S : M.Statics) {
    (void)S;
    static const rt::TypeDescriptor IntCell("staticcell", 1,
                                            std::vector<uint32_t>{});
    static const rt::TypeDescriptor RefCell("staticrefcell", 1,
                                            std::vector<uint32_t>{0});
    StaticCells.push_back(Heap.allocate(S.IsRef ? &RefCell : &IntCell,
                                        rt::BirthState::Shared));
  }
}

Interp::~Interp() {
  std::lock_guard<std::mutex> Lock(ThreadsMutex);
  for (auto &[Handle, T] : Threads)
    if (T.joinable())
      T.join();
}

void Interp::emitOutput(const std::string &Text) {
  ThreadCtx &C = threadCtx();
  if (C.AtomicDepth > 0) {
    // Buffer: a retried transaction must not print twice.
    C.PendingOut += Text;
    return;
  }
  std::lock_guard<std::mutex> Lock(OutMutex);
  Out += Text;
}

std::string Interp::output() const {
  std::lock_guard<std::mutex> Lock(OutMutex);
  return Out;
}

std::string Interp::error() const { return Err; }

void Interp::threadMain(uint32_t FuncId, std::vector<Word> Args) {
  try {
    execFunction(FuncId, std::move(Args));
  } catch (RuntimeError &E) {
    std::lock_guard<std::mutex> Lock(ErrMutex);
    if (!HasError.exchange(true))
      Err = E.Message;
  }
}

bool Interp::run() {
  assert(M.MainFunc != ~0u && "module has no main()");
  stm::Config Cfg = stm::config();
  Cfg.DeaEnabled = Opts.Dea;
  stm::ScopedConfig SC(Cfg);
  threadMain(M.MainFunc, {});
  // Join stragglers the program did not join itself.
  for (;;) {
    std::thread T;
    {
      std::lock_guard<std::mutex> Lock(ThreadsMutex);
      if (Threads.empty())
        break;
      auto It = Threads.begin();
      T = std::move(It->second);
      Threads.erase(It);
    }
    if (T.joinable())
      T.join();
  }
  return !HasError.load();
}

Word Interp::execFunction(uint32_t FuncId, std::vector<Word> Args) {
  const Function &F = M.Funcs[FuncId];
  assert(Args.size() == F.NumParams && "arity mismatch");
  std::vector<Word> Regs(F.NumRegs, 0);
  for (size_t I = 0; I < Args.size(); ++I)
    Regs[I] = Args[I];
  Word Ret = 0;
  execFromEntry(FuncId, Regs, Ret);
  return Ret;
}

namespace {

[[noreturn]] void fail(Loc Where, const std::string &Msg) {
  throw Interp::RuntimeError{std::to_string(Where.Line) + ":" +
                             std::to_string(Where.Col) + ": " + Msg};
}

} // namespace

/// The main execution engine. Implemented as a member so it can reach the
/// object model; structured as an explicit (block, index) machine so that
/// atomic regions can re-enter it mid-function.
void Interp::execFromEntry(uint32_t FuncId, std::vector<Word> &Regs,
                           Word &Ret) {
  const Function &F = M.Funcs[FuncId];
  ThreadCtx &TC = threadCtx();

  // Execution position. ExecUntilEnd runs until Ret (returns true) or, in
  // region mode, until the matching AtomicEnd (returns false).
  struct Pos {
    BlockId B = 0;
    size_t I = 0;
  };

  // Forward-declared recursive lambda: run from P; if StopAtAtomicEnd,
  // stop after executing an AtomicEnd.
  std::function<bool(Pos)> Run = [&](Pos P) -> bool {
    std::optional<stm::AggregatedWriter> Agg;
    Object *AggObj = nullptr;

    auto NullCheck = [](Object *O, const Inst &I) {
      if (!O)
        fail(I.Where, "null dereference");
      return O;
    };
    auto BoundsCheck = [](Object *O, Word Index, const Inst &I) {
      if (Index >= O->slotCount())
        fail(I.Where, "array index " + std::to_string((int64_t)Index) +
                          " out of bounds for length " +
                          std::to_string(O->slotCount()));
      return static_cast<uint32_t>(Index);
    };

    // Barrier-dispatched slot access for non-static heap accesses.
    auto LoadSlot = [&](Object *O, uint32_t Slot, const Inst &I) -> Word {
      stm::Txn &T = stm::Txn::forThisThread();
      if (T.isActive())
        return T.read(O, Slot);
      if (Opts.StrongBarriers && I.NeedsBarrier) {
        if (I.Agg != AggRole::None) {
          if (I.Agg == AggRole::Open) {
            Agg.emplace(O);
            AggObj = O;
          }
          assert(Agg && AggObj == O && "broken aggregation group");
          Word V = Agg->load(Slot);
          if (I.Agg == AggRole::Close) {
            Agg.reset();
            AggObj = nullptr;
          }
          return V;
        }
        return stm::ntRead(O, Slot);
      }
      return O->rawLoad(Slot, std::memory_order_acquire);
    };

    auto StoreSlot = [&](Object *O, uint32_t Slot, Word V, const Inst &I) {
      stm::Txn &T = stm::Txn::forThisThread();
      if (T.isActive()) {
        if (I.IsRefValue)
          T.writeRef(O, Slot, Object::fromWord(V));
        else
          T.write(O, Slot, V);
        return;
      }
      if (Opts.StrongBarriers && I.NeedsBarrier) {
        if (I.Agg != AggRole::None) {
          if (I.Agg == AggRole::Open) {
            Agg.emplace(O);
            AggObj = O;
          }
          assert(Agg && AggObj == O && "broken aggregation group");
          if (I.IsRefValue)
            Agg->storeRef(Slot, Object::fromWord(V));
          else
            Agg->store(Slot, V);
          if (I.Agg == AggRole::Close) {
            Agg.reset();
            AggObj = nullptr;
          }
          return;
        }
        if (I.IsRefValue)
          stm::ntWriteRef(O, Slot, Object::fromWord(V));
        else
          stm::ntWrite(O, Slot, V);
        return;
      }
      // Barrier removed (or weak mode). With DEA on, a reference store
      // into a public object must still publish the referee: barrier
      // *elision* removes the synchronization, never the publication, or
      // the private-bit invariant would break (DESIGN.md §4 note).
      if (Opts.Dea && I.IsRefValue && V != 0 &&
          !stm::TxRecord::isPrivate(
              O->txRecord().load(std::memory_order_acquire)))
        stm::publishObject(Object::fromWord(V));
      O->rawStore(Slot, V, std::memory_order_release);
    };

    for (;;) {
      assert(P.B < F.Blocks.size() && P.I < F.Blocks[P.B].Insts.size() &&
             "fell off the instruction stream");
      const Inst &I = F.Blocks[P.B].Insts[P.I];
      if (Opts.MaxSteps && ++TC.Steps > Opts.MaxSteps)
        fail(I.Where, "execution step budget exceeded");
      switch (I.K) {
      case Op::ConstInt:
        Regs[I.Dst] = static_cast<Word>(I.Imm);
        break;
      case Op::Move:
        Regs[I.Dst] = Regs[I.A];
        break;
      case Op::Bin: {
        int64_t A = static_cast<int64_t>(Regs[I.A]);
        int64_t B = static_cast<int64_t>(Regs[I.B]);
        int64_t R = 0;
        switch (I.BOp) {
        case BinOp::Add:
          R = static_cast<int64_t>(static_cast<uint64_t>(A) +
                                   static_cast<uint64_t>(B));
          break;
        case BinOp::Sub:
          R = static_cast<int64_t>(static_cast<uint64_t>(A) -
                                   static_cast<uint64_t>(B));
          break;
        case BinOp::Mul:
          R = static_cast<int64_t>(static_cast<uint64_t>(A) *
                                   static_cast<uint64_t>(B));
          break;
        case BinOp::Div:
          if (B == 0)
            fail(I.Where, "division by zero");
          if (A == INT64_MIN && B == -1)
            fail(I.Where, "integer overflow in division");
          R = A / B;
          break;
        case BinOp::Rem:
          if (B == 0)
            fail(I.Where, "remainder by zero");
          if (A == INT64_MIN && B == -1)
            fail(I.Where, "integer overflow in remainder");
          R = A % B;
          break;
        case BinOp::Lt:
          R = A < B;
          break;
        case BinOp::Le:
          R = A <= B;
          break;
        case BinOp::Gt:
          R = A > B;
          break;
        case BinOp::Ge:
          R = A >= B;
          break;
        case BinOp::Eq:
          R = Regs[I.A] == Regs[I.B];
          break;
        case BinOp::Ne:
          R = Regs[I.A] != Regs[I.B];
          break;
        case BinOp::And:
        case BinOp::Or:
          assert(false && "short-circuit ops are lowered to control flow");
          break;
        }
        Regs[I.Dst] = static_cast<Word>(R);
        break;
      }
      case Op::Neg:
        Regs[I.Dst] = static_cast<Word>(-static_cast<int64_t>(Regs[I.A]));
        break;
      case Op::Not:
        Regs[I.Dst] = Regs[I.A] == 0;
        break;
      case Op::NewObject:
        Regs[I.Dst] = Object::toWord(Heap.allocate(
            ClassTypes[I.Index].get(), stm::config().birthState()));
        break;
      case Op::NewArray: {
        int64_t Len = static_cast<int64_t>(Regs[I.A]);
        if (Len < 0)
          fail(I.Where, "negative array length");
        Regs[I.Dst] = Object::toWord(Heap.allocateArray(
            I.Index ? RefArrayType.get() : IntArrayType.get(),
            static_cast<uint32_t>(Len), stm::config().birthState()));
        break;
      }
      case Op::LoadField: {
        Object *O = NullCheck(Object::fromWord(Regs[I.A]), I);
        Regs[I.Dst] = LoadSlot(O, I.Index, I);
        break;
      }
      case Op::StoreField: {
        Object *O = NullCheck(Object::fromWord(Regs[I.A]), I);
        StoreSlot(O, I.Index, Regs[I.B], I);
        break;
      }
      case Op::LoadElem: {
        Object *O = NullCheck(Object::fromWord(Regs[I.A]), I);
        uint32_t Slot = BoundsCheck(O, Regs[I.B], I);
        Regs[I.Dst] = LoadSlot(O, Slot, I);
        break;
      }
      case Op::StoreElem: {
        Object *O = NullCheck(Object::fromWord(Regs[I.A]), I);
        uint32_t Slot = BoundsCheck(O, Regs[I.B], I);
        StoreSlot(O, Slot, Regs[I.C], I);
        break;
      }
      case Op::LoadStatic:
        Regs[I.Dst] = LoadSlot(StaticCells[I.Index], 0, I);
        break;
      case Op::StoreStatic:
        StoreSlot(StaticCells[I.Index], 0, Regs[I.A], I);
        break;
      case Op::ArrayLen: {
        Object *O = NullCheck(Object::fromWord(Regs[I.A]), I);
        Regs[I.Dst] = O->slotCount();
        break;
      }
      case Op::Call: {
        std::vector<Word> Args;
        Args.reserve(I.Args.size());
        for (RegId A : I.Args)
          Args.push_back(Regs[A]);
        Word R = execFunction(I.Index, std::move(Args));
        if (I.Imm)
          Regs[I.Dst] = R;
        break;
      }
      case Op::Spawn: {
        std::vector<Word> Args;
        Args.reserve(I.Args.size());
        const Function &Callee = M.Funcs[I.Index];
        for (size_t A = 0; A < I.Args.size(); ++A) {
          Word V = Regs[I.Args[A]];
          // Arguments become visible to the spawned thread: publish
          // private referees ("Thread objects become public prior to the
          // thread being spawned", §4).
          if (Opts.Dea && A < Callee.ParamIsRef.size() &&
              Callee.ParamIsRef[A] && V != 0)
            stm::publishObject(Object::fromWord(V));
          Args.push_back(V);
        }
        int64_t Handle = NextHandle.fetch_add(1);
        std::thread T(&Interp::threadMain, this, I.Index, std::move(Args));
        {
          std::lock_guard<std::mutex> Lock(ThreadsMutex);
          Threads.emplace(Handle, std::move(T));
        }
        Regs[I.Dst] = static_cast<Word>(Handle);
        break;
      }
      case Op::Join: {
        int64_t Handle = static_cast<int64_t>(Regs[I.A]);
        std::thread T;
        {
          std::lock_guard<std::mutex> Lock(ThreadsMutex);
          auto It = Threads.find(Handle);
          if (It == Threads.end())
            fail(I.Where, "join of unknown or already-joined thread");
          T = std::move(It->second);
          Threads.erase(It);
        }
        T.join();
        break;
      }
      case Op::Print:
        emitOutput(std::to_string(static_cast<int64_t>(Regs[I.A])) + "\n");
        break;
      case Op::Prints:
        emitOutput(M.Strings[I.Index]);
        break;
      case Op::Retry:
        stm::Txn::forThisThread().userRetry();
        break;
      case Op::AtomicBegin: {
        Pos Body{P.B, P.I + 1};
        BlockId EndBlock = I.Index;
        std::vector<Word> Snapshot = Regs;
        ++TC.AtomicDepth;
        bool Outermost = TC.AtomicDepth == 1;
        try {
          stm::Txn::run([&] {
            Regs = Snapshot; // Re-execution starts from a clean frame.
            if (Outermost)
              TC.PendingOut.clear();
            bool Returned = Run(Body);
            assert(!Returned && "return escaped an atomic region");
            (void)Returned;
          });
        } catch (...) {
          --TC.AtomicDepth;
          throw;
        }
        --TC.AtomicDepth;
        if (Outermost && !TC.PendingOut.empty()) {
          std::string Buffered;
          Buffered.swap(TC.PendingOut);
          emitOutput(Buffered);
        }
        // Resume after the AtomicEnd heading the end block.
        P = {EndBlock, 1};
        continue;
      }
      case Op::OpenBegin: {
        Pos Body{P.B, P.I + 1};
        BlockId EndBlock = I.Index;
        // No register snapshot: an open region commits independently and
        // never re-executes by itself; a conflict inside it unwinds (and
        // restarts) the whole enclosing transaction, whose own snapshot
        // restores the frame.
        stm::Txn::runOpenNested([&] {
          bool Returned = Run(Body);
          assert(!Returned && "return escaped an open region");
          (void)Returned;
        });
        P = {EndBlock, 1};
        continue;
      }
      case Op::AtomicEnd:
      case Op::OpenEnd:
        // Only reachable inside a region body (the resume paths above skip
        // them): the region is complete.
        return false;
      case Op::Jump:
        P = {I.Index, 0};
        continue;
      case Op::Branch:
        P = {Regs[I.A] != 0 ? I.Index : I.Index2, 0};
        continue;
      case Op::Ret:
        if (I.Imm)
          Ret = Regs[I.A];
        return true;
      }
      ++P.I;
    }
  };

  Run({0, 0});
}
