//===- tc/Sema.h - TranC semantic analysis ---------------------*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name resolution and type checking over the AST. Sema annotates the tree
/// in place: expression types, local slot indices, static indices and field
/// slot indices. It also enforces the transactional structure rules the IR
/// relies on: `retry` only inside `atomic`, and no `return` out of an
/// `atomic` block (regions are single-entry/single-exit).
///
//===----------------------------------------------------------------------===//

#ifndef SATM_TC_SEMA_H
#define SATM_TC_SEMA_H

#include "tc/Ast.h"
#include "tc/Diag.h"

namespace satm {
namespace tc {

/// Resolves and type-checks \p P, reporting problems to \p D. The program
/// is only meaningful for downstream stages when !D.hasErrors().
void analyze(Program &P, Diag &D);

} // namespace tc
} // namespace satm

#endif // SATM_TC_SEMA_H
