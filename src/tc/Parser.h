//===- tc/Parser.h - TranC recursive-descent parser ------------*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser from tokens to the AST. Grammar sketch:
///
///   program   := (classDecl | staticDecl | funcDecl)*
///   classDecl := 'class' ID '{' (type ID ';')* '}'
///   staticDecl:= 'static' type ID ';'
///   funcDecl  := 'fn' ID '(' params? ')' (':' type)? block
///   type      := ('int' | 'bool' | ID) ('[' ']')?
///   stmt      := block | varDecl | if | while | return | atomic | retry ';'
///              | join '(' expr ')' ';' | print '(' expr ')' ';'
///              | prints '(' STR ')' ';' | assign | exprStmt
///   expr      := orExpr; standard precedence; unary - and !
///   primary   := INT | 'true' | 'false' | 'null' | ID | call | 'new' ...
///              | 'spawn' ID '(' args ')' | len '(' expr ')' | '(' expr ')'
///   postfix   := primary ('.' ID | '[' expr ']')*
///
//===----------------------------------------------------------------------===//

#ifndef SATM_TC_PARSER_H
#define SATM_TC_PARSER_H

#include "tc/Ast.h"
#include "tc/Lexer.h"

namespace satm {
namespace tc {

/// Parses \p Source into a Program. Errors go to \p D; the returned
/// program is meaningful only when !D.hasErrors().
Program parse(const std::string &Source, Diag &D);

} // namespace tc
} // namespace satm

#endif // SATM_TC_PARSER_H
