//===- tc/Ir.h - TranC register IR -----------------------------*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A register-based, CFG-structured IR for TranC, the unit the paper's
/// analyses operate on. Memory-access instructions carry the annotations
/// the optimization pipeline computes: lexically-in-atomic (the "context"
/// seed of §5.1), NeedsBarrier (the §5.2 barrier-removal verdict combined
/// with the §6 JIT analyses), and the §6 aggregation role.
///
/// Atomic blocks are single-entry/single-exit regions delimited by
/// AtomicBegin (whose Index names the block that starts with the matching
/// AtomicEnd); Sema guarantees no return leaves a region.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_TC_IR_H
#define SATM_TC_IR_H

#include "tc/Ast.h"

#include <cstdint>
#include <string>
#include <vector>

namespace satm {
namespace tc {
namespace ir {

using RegId = uint32_t;
using BlockId = uint32_t;

enum class Op : uint8_t {
  ConstInt,    ///< Dst = Imm.
  Move,        ///< Dst = A.
  Bin,         ///< Dst = A <BOp> B (no &&/||; those lower to control flow).
  Neg,         ///< Dst = -A.
  Not,         ///< Dst = !A.
  NewObject,   ///< Dst = new Classes[Index]; Index2 = allocation site.
  NewArray,    ///< Dst = new elem[A]; Index = ref-elem flag; Index2 = site.
  LoadField,   ///< Dst = A.field[Index]           (heap access).
  StoreField,  ///< A.field[Index] = B             (heap access).
  LoadStatic,  ///< Dst = statics[Index]           (heap access).
  StoreStatic, ///< statics[Index] = A             (heap access).
  LoadElem,    ///< Dst = A[B]                     (heap access).
  StoreElem,   ///< A[B] = C                       (heap access).
  ArrayLen,    ///< Dst = len(A); immutable, never needs a barrier (§6).
  Call,        ///< Dst = Funcs[Index](Args); Imm=1 if a result is produced.
  Spawn,       ///< Dst = handle of new thread running Funcs[Index](Args).
  Join,        ///< join thread A.
  Print,       ///< print integer A.
  Prints,      ///< print Strings[Index].
  Retry,       ///< user-initiated transaction retry.
  AtomicBegin, ///< begin atomic region; Index = block of matching AtomicEnd.
  AtomicEnd,   ///< end atomic region.
  OpenBegin,   ///< begin open-nested region; Index = block of its OpenEnd.
  OpenEnd,     ///< end open-nested region (independent commit).
  Jump,        ///< goto block Index.
  Branch,      ///< if A goto block Index else goto block Index2.
  Ret,         ///< return (A if Imm == 1).
};

/// True if \p K reads or writes the heap (field, static or element) — the
/// instructions that carry isolation barriers outside transactions.
inline bool isHeapAccess(Op K) {
  return K == Op::LoadField || K == Op::StoreField || K == Op::LoadStatic ||
         K == Op::StoreStatic || K == Op::LoadElem || K == Op::StoreElem;
}

/// True if \p K is a heap store.
inline bool isHeapStore(Op K) {
  return K == Op::StoreField || K == Op::StoreStatic || K == Op::StoreElem;
}

/// Aggregation roles assigned by the §6 barrier-aggregation pass.
enum class AggRole : uint8_t {
  None,   ///< Standalone barrier.
  Open,   ///< First access of a group: acquire the record.
  Member, ///< Interior access: record already held.
  Close,  ///< Last access: release the record afterwards.
};

struct Inst {
  Op K;
  Loc Where;
  RegId Dst = 0;
  RegId A = 0;
  RegId B = 0;
  RegId C = 0;
  int64_t Imm = 0;
  uint32_t Index = 0;
  uint32_t Index2 = 0;
  BinOp BOp = BinOp::Add;
  std::vector<RegId> Args; ///< Call/Spawn arguments.

  /// For stores: the stored value is a reference (drives publication and
  /// points-to edges). For loads: the result is a reference.
  bool IsRefValue = false;

  //===-- Analysis annotations (heap accesses only) -----------------------===
  /// Lexically inside an atomic block (§5.1's in-transaction seed).
  bool InAtomic = false;
  /// Isolation barrier required when executed outside a transaction.
  /// Starts true for every heap access; passes clear it.
  bool NeedsBarrier = true;
  /// Barrier-aggregation role (§6).
  AggRole Agg = AggRole::None;
};

struct Block {
  std::vector<Inst> Insts;
};

struct Function {
  std::string Name;
  uint32_t FuncId = 0;
  uint32_t NumParams = 0;
  uint32_t NumRegs = 0; ///< Locals first, then temporaries.
  std::vector<Block> Blocks; ///< Blocks[0] is the entry.
  std::vector<bool> ParamIsRef; ///< Which parameters are references.
  bool RetIsRef = false;
};

struct ClassInfo {
  std::string Name;
  uint32_t NumSlots = 0;
  std::vector<uint32_t> RefSlots;
};

struct StaticInfo {
  std::string Name;
  bool IsRef = false;
};

/// A lowered TranC program.
struct Module {
  std::vector<Function> Funcs;
  std::vector<ClassInfo> Classes;
  std::vector<StaticInfo> Statics;
  std::vector<std::string> Strings;
  uint32_t MainFunc = ~0u; ///< ~0u when the program has no main().
  uint32_t NumAllocSites = 0;

  const Function *findFunc(const std::string &Name) const {
    for (const Function &F : Funcs)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }
};

/// Renders \p M as readable text (tests and debugging).
std::string printModule(const Module &M);

} // namespace ir
} // namespace tc
} // namespace satm

#endif // SATM_TC_IR_H
