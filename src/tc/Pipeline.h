//===- tc/Pipeline.h - Compilation and optimization driver -----*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end driver: source -> AST -> IR -> analyses -> annotated module.
/// The pass set mirrors the paper's cumulative optimization levels
/// (Figures 15-20): intraprocedural escape (part of "Barrier Elim"),
/// barrier aggregation ("+ Barrier Aggr"), dynamic escape analysis (a
/// runtime mode, selected at execution), and the whole-program analyses
/// NAIT and TL ("+ Whole-Prog Opts").
///
//===----------------------------------------------------------------------===//

#ifndef SATM_TC_PIPELINE_H
#define SATM_TC_PIPELINE_H

#include "tc/Analyses.h"
#include "tc/Diag.h"
#include "tc/Ir.h"

#include <string>

namespace satm {
namespace tc {

/// Which optimizations to apply to the module.
struct PassOptions {
  bool ScalarOpts = false;      ///< Constant folding / copy prop / DCE.
  bool IntraprocEscape = false; ///< §6 JIT static escape analysis.
  bool Aggregate = false;       ///< §6 barrier aggregation.
  bool Nait = false;            ///< §5 not-accessed-in-transaction.
  bool ThreadLocal = false;     ///< §5.4 TL comparison analysis.
};

/// Summary of what the pipeline did, for reports and tests.
struct PipelineStats {
  uint64_t HeapAccesses = 0;     ///< Heap accesses in the module.
  uint64_t BarriersBefore = 0;   ///< Non-txn barriers before passes.
  uint64_t BarriersAfter = 0;    ///< Still-needed barriers after passes.
  uint64_t RemovedByWholeProg = 0;
  uint64_t RemovedByEscape = 0;
  uint64_t AggregationGroups = 0;
  uint64_t ScalarFolded = 0;   ///< Instructions folded/removed by ScalarOpts.
  BarrierVerdicts::Counts WholeProg; ///< Fig. 13 style NAIT/TL counts.
};

/// Compiles \p Source and runs the selected passes. On compile errors,
/// returns an empty module and leaves the messages in \p D.
ir::Module compile(const std::string &Source, const PassOptions &O, Diag &D,
                   PipelineStats *Stats = nullptr);

/// Runs the selected passes over an already-lowered module (used when one
/// program is compiled once and analyzed under several pass sets).
PipelineStats runPasses(ir::Module &M, const PassOptions &O);

} // namespace tc
} // namespace satm

#endif // SATM_TC_PIPELINE_H
