//===- tc/Lexer.cpp - TranC lexical analysis -----------------------------===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "tc/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace satm;
using namespace satm::tc;

const char *satm::tc::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Ident:
    return "identifier";
  case TokKind::IntLit:
    return "integer literal";
  case TokKind::StrLit:
    return "string literal";
  case TokKind::KwClass:
    return "'class'";
  case TokKind::KwStatic:
    return "'static'";
  case TokKind::KwFn:
    return "'fn'";
  case TokKind::KwVar:
    return "'var'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwAtomic:
    return "'atomic'";
  case TokKind::KwOpen:
    return "'open'";
  case TokKind::KwRetry:
    return "'retry'";
  case TokKind::KwSpawn:
    return "'spawn'";
  case TokKind::KwJoin:
    return "'join'";
  case TokKind::KwNew:
    return "'new'";
  case TokKind::KwNull:
    return "'null'";
  case TokKind::KwTrue:
    return "'true'";
  case TokKind::KwFalse:
    return "'false'";
  case TokKind::KwInt:
    return "'int'";
  case TokKind::KwBool:
    return "'bool'";
  case TokKind::KwPrint:
    return "'print'";
  case TokKind::KwPrints:
    return "'prints'";
  case TokKind::KwLen:
    return "'len'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Semi:
    return "';'";
  case TokKind::Colon:
    return "':'";
  case TokKind::Comma:
    return "','";
  case TokKind::Dot:
    return "'.'";
  case TokKind::Assign:
    return "'='";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Le:
    return "'<='";
  case TokKind::Gt:
    return "'>'";
  case TokKind::Ge:
    return "'>='";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::AndAnd:
    return "'&&'";
  case TokKind::OrOr:
    return "'||'";
  case TokKind::Not:
    return "'!'";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string, TokKind> &keywords() {
  static const std::unordered_map<std::string, TokKind> Map = {
      {"class", TokKind::KwClass},   {"static", TokKind::KwStatic},
      {"fn", TokKind::KwFn},         {"var", TokKind::KwVar},
      {"if", TokKind::KwIf},         {"else", TokKind::KwElse},
      {"while", TokKind::KwWhile},   {"return", TokKind::KwReturn},
      {"atomic", TokKind::KwAtomic}, {"open", TokKind::KwOpen},
      {"retry", TokKind::KwRetry},
      {"spawn", TokKind::KwSpawn},   {"join", TokKind::KwJoin},
      {"new", TokKind::KwNew},       {"null", TokKind::KwNull},
      {"true", TokKind::KwTrue},     {"false", TokKind::KwFalse},
      {"int", TokKind::KwInt},       {"bool", TokKind::KwBool},
      {"print", TokKind::KwPrint},   {"prints", TokKind::KwPrints},
      {"len", TokKind::KwLen},
  };
  return Map;
}

class LexerImpl {
public:
  LexerImpl(const std::string &Source, Diag &D) : Src(Source), D(D) {}

  std::vector<Token> run() {
    std::vector<Token> Toks;
    for (;;) {
      skipTrivia();
      Token T = next();
      Toks.push_back(T);
      if (T.Kind == TokKind::Eof)
        break;
    }
    return Toks;
  }

private:
  bool atEnd() const { return Pos >= Src.size(); }
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = Src[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }
  Loc here() const { return {Line, Col}; }

  void skipTrivia() {
    for (;;) {
      if (atEnd())
        return;
      char C = peek();
      if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
        advance();
        continue;
      }
      if (C == '/' && peek(1) == '/') {
        while (!atEnd() && peek() != '\n')
          advance();
        continue;
      }
      if (C == '/' && peek(1) == '*') {
        Loc Start = here();
        advance();
        advance();
        while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
          advance();
        if (atEnd()) {
          D.error(Start, "unterminated block comment");
          return;
        }
        advance();
        advance();
        continue;
      }
      return;
    }
  }

  Token make(TokKind K, Loc Where) {
    Token T;
    T.Kind = K;
    T.Where = Where;
    return T;
  }

  Token next() {
    if (atEnd())
      return make(TokKind::Eof, here());
    Loc Start = here();
    char C = advance();

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Text(1, C);
      while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
        Text += advance();
      auto It = keywords().find(Text);
      if (It != keywords().end())
        return make(It->second, Start);
      Token T = make(TokKind::Ident, Start);
      T.Text = std::move(Text);
      return T;
    }

    if (std::isdigit(static_cast<unsigned char>(C))) {
      int64_t Value = C - '0';
      bool Overflow = false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        int Digit = advance() - '0';
        if (Value > (INT64_MAX - Digit) / 10)
          Overflow = true;
        else
          Value = Value * 10 + Digit;
      }
      if (Overflow)
        D.error(Start, "integer literal does not fit in 64 bits");
      Token T = make(TokKind::IntLit, Start);
      T.IntValue = Value;
      return T;
    }

    if (C == '"') {
      std::string Text;
      for (;;) {
        if (atEnd() || peek() == '\n') {
          D.error(Start, "unterminated string literal");
          break;
        }
        char N = advance();
        if (N == '"')
          break;
        if (N == '\\') {
          char E = atEnd() ? '\0' : advance();
          switch (E) {
          case 'n':
            Text += '\n';
            break;
          case 't':
            Text += '\t';
            break;
          case '\\':
            Text += '\\';
            break;
          case '"':
            Text += '"';
            break;
          default:
            D.error(here(), "unknown escape sequence");
          }
          continue;
        }
        Text += N;
      }
      Token T = make(TokKind::StrLit, Start);
      T.Text = std::move(Text);
      return T;
    }

    switch (C) {
    case '(':
      return make(TokKind::LParen, Start);
    case ')':
      return make(TokKind::RParen, Start);
    case '{':
      return make(TokKind::LBrace, Start);
    case '}':
      return make(TokKind::RBrace, Start);
    case '[':
      return make(TokKind::LBracket, Start);
    case ']':
      return make(TokKind::RBracket, Start);
    case ';':
      return make(TokKind::Semi, Start);
    case ':':
      return make(TokKind::Colon, Start);
    case ',':
      return make(TokKind::Comma, Start);
    case '.':
      return make(TokKind::Dot, Start);
    case '+':
      return make(TokKind::Plus, Start);
    case '-':
      return make(TokKind::Minus, Start);
    case '*':
      return make(TokKind::Star, Start);
    case '/':
      return make(TokKind::Slash, Start);
    case '%':
      return make(TokKind::Percent, Start);
    case '!':
      if (peek() == '=') {
        advance();
        return make(TokKind::NotEq, Start);
      }
      return make(TokKind::Not, Start);
    case '=':
      if (peek() == '=') {
        advance();
        return make(TokKind::EqEq, Start);
      }
      return make(TokKind::Assign, Start);
    case '<':
      if (peek() == '=') {
        advance();
        return make(TokKind::Le, Start);
      }
      return make(TokKind::Lt, Start);
    case '>':
      if (peek() == '=') {
        advance();
        return make(TokKind::Ge, Start);
      }
      return make(TokKind::Gt, Start);
    case '&':
      if (peek() == '&') {
        advance();
        return make(TokKind::AndAnd, Start);
      }
      break;
    case '|':
      if (peek() == '|') {
        advance();
        return make(TokKind::OrOr, Start);
      }
      break;
    default:
      break;
    }
    D.error(Start, std::string("unexpected character '") + C + "'");
    return next();
  }

  const std::string &Src;
  Diag &D;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace

std::vector<Token> satm::tc::lex(const std::string &Source, Diag &D) {
  return LexerImpl(Source, D).run();
}
