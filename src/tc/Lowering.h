//===- tc/Lowering.h - AST to IR lowering ----------------------*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a type-checked TranC AST into the register IR: expressions to
/// three-address instructions, short-circuit operators and structured
/// control flow to CFG blocks, and atomic blocks to single-entry/
/// single-exit AtomicBegin/AtomicEnd regions.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_TC_LOWERING_H
#define SATM_TC_LOWERING_H

#include "tc/Ast.h"
#include "tc/Ir.h"

namespace satm {
namespace tc {

/// Lowers the Sema-checked \p P. Must only be called when Sema reported no
/// errors.
ir::Module lower(const Program &P);

} // namespace tc
} // namespace satm

#endif // SATM_TC_LOWERING_H
