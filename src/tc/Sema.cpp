//===- tc/Sema.cpp - TranC semantic analysis -----------------------------===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "tc/Sema.h"

#include <unordered_map>
#include <unordered_set>

using namespace satm;
using namespace satm::tc;

namespace {

class SemaImpl {
public:
  SemaImpl(Program &P, Diag &D) : P(P), D(D) {}

  void run() {
    declareGlobals();
    if (D.hasErrors())
      return;
    for (auto &F : P.Funcs)
      checkFunc(*F);
  }

private:
  void declareGlobals() {
    std::unordered_set<std::string> Names;
    for (auto &C : P.Classes) {
      if (!Names.insert(C->Name).second)
        D.error(C->Where, "duplicate type name '" + C->Name + "'");
      std::unordered_set<std::string> FieldNames;
      for (FieldDecl &F : C->Fields) {
        if (!FieldNames.insert(F.Name).second)
          D.error(F.Where, "duplicate field '" + F.Name + "' in class '" +
                               C->Name + "'");
        checkTypeExists(F.Ty, F.Where);
      }
    }
    uint32_t StaticIndex = 0;
    for (auto &S : P.Statics) {
      if (!Names.insert(S->Name).second)
        D.error(S->Where, "duplicate global name '" + S->Name + "'");
      checkTypeExists(S->Ty, S->Where);
      S->Index = StaticIndex++;
    }
    for (auto &F : P.Funcs) {
      if (!Names.insert(F->Name).second)
        D.error(F->Where, "duplicate function name '" + F->Name + "'");
      for (ParamDecl &Param : F->Params)
        checkTypeExists(Param.Ty, Param.Where);
      if (F->RetTy.Kind != Type::Void)
        checkTypeExists(F->RetTy, F->Where);
    }
  }

  void checkTypeExists(const Type &T, Loc Where) {
    const std::string *Name = nullptr;
    if (T.Kind == Type::Class || T.Kind == Type::RefArray)
      Name = &T.ClassName;
    if (Name && !P.findClass(*Name))
      D.error(Where, "unknown class '" + *Name + "'");
  }

  //===--------------------------------------------------------------------===
  // Per-function state.
  //===--------------------------------------------------------------------===

  struct LocalVar {
    std::string Name;
    Type Ty;
    uint32_t Index;
    size_t ScopeDepth;
  };

  void checkFunc(FuncDecl &F) {
    CurFunc = &F;
    Locals.clear();
    ScopeDepth = 0;
    NextLocal = 0;
    AtomicDepth = 0;
    OpenDepth = 0;
    for (ParamDecl &Param : F.Params)
      declareLocal(Param.Name, Param.Ty, Param.Where);
    checkStmt(*F.Body);
    F.NumLocals = NextLocal;
  }

  uint32_t declareLocal(const std::string &Name, const Type &Ty, Loc Where) {
    for (auto It = Locals.rbegin(); It != Locals.rend(); ++It) {
      if (It->ScopeDepth != ScopeDepth)
        break;
      if (It->Name == Name) {
        D.error(Where, "redeclaration of '" + Name + "' in the same scope");
        return It->Index;
      }
    }
    uint32_t Index = NextLocal++;
    Locals.push_back({Name, Ty, Index, ScopeDepth});
    return Index;
  }

  const LocalVar *findLocal(const std::string &Name) const {
    for (auto It = Locals.rbegin(); It != Locals.rend(); ++It)
      if (It->Name == Name)
        return &*It;
    return nullptr;
  }

  //===--------------------------------------------------------------------===
  // Statements.
  //===--------------------------------------------------------------------===

  void checkStmt(Stmt &S) {
    switch (S.K) {
    case Stmt::Kind::Block: {
      auto &B = static_cast<BlockStmt &>(S);
      ++ScopeDepth;
      for (StmtPtr &Child : B.Stmts)
        checkStmt(*Child);
      while (!Locals.empty() && Locals.back().ScopeDepth == ScopeDepth)
        Locals.pop_back();
      --ScopeDepth;
      return;
    }
    case Stmt::Kind::VarDecl: {
      auto &V = static_cast<VarDeclStmt &>(S);
      Type InitTy = checkExpr(*V.Init);
      Type VarTy = V.DeclaredTy;
      if (VarTy.Kind == Type::Void) {
        if (InitTy.Kind == Type::Null) {
          D.error(V.Where, "cannot infer the type of '" + V.Name +
                               "' from a null initializer");
          VarTy = Type::intTy();
        } else {
          VarTy = InitTy;
        }
      } else if (!VarTy.accepts(InitTy)) {
        D.error(V.Where, "cannot initialize '" + V.Name + "' of type " +
                             VarTy.str() + " with a value of type " +
                             InitTy.str());
      }
      V.DeclaredTy = VarTy;
      V.LocalIndex = declareLocal(V.Name, VarTy, V.Where);
      return;
    }
    case Stmt::Kind::Assign: {
      auto &A = static_cast<AssignStmt &>(S);
      Type TargetTy = checkExpr(*A.Target);
      if (!isAssignable(*A.Target))
        D.error(A.Where, "expression is not assignable");
      Type ValueTy = checkExpr(*A.Value);
      if (!TargetTy.accepts(ValueTy))
        D.error(A.Where, "cannot assign a value of type " + ValueTy.str() +
                             " to a target of type " + TargetTy.str());
      return;
    }
    case Stmt::Kind::If: {
      auto &I = static_cast<IfStmt &>(S);
      expectBool(checkExpr(*I.Cond), I.Cond->Where);
      checkStmt(*I.Then);
      if (I.Else)
        checkStmt(*I.Else);
      return;
    }
    case Stmt::Kind::While: {
      auto &W = static_cast<WhileStmt &>(S);
      expectBool(checkExpr(*W.Cond), W.Cond->Where);
      checkStmt(*W.Body);
      return;
    }
    case Stmt::Kind::Return: {
      auto &R = static_cast<ReturnStmt &>(S);
      if (AtomicDepth > 0 || OpenDepth > 0) {
        D.error(R.Where, "'return' may not leave an atomic or open block");
        return;
      }
      if (R.Value) {
        Type T = checkExpr(*R.Value);
        if (!CurFunc->RetTy.accepts(T))
          D.error(R.Where, "returning " + T.str() + " from a function of "
                           "type " + CurFunc->RetTy.str());
      } else if (CurFunc->RetTy.Kind != Type::Void) {
        D.error(R.Where, "non-void function must return a value");
      }
      return;
    }
    case Stmt::Kind::ExprStmt:
      checkExpr(*static_cast<ExprStmt &>(S).E);
      return;
    case Stmt::Kind::Atomic: {
      ++AtomicDepth;
      checkStmt(*static_cast<AtomicStmt &>(S).Body);
      --AtomicDepth;
      return;
    }
    case Stmt::Kind::Open: {
      if (AtomicDepth == 0)
        D.error(S.Where, "'open' requires an enclosing atomic block");
      ++OpenDepth;
      checkStmt(*static_cast<OpenStmt &>(S).Body);
      --OpenDepth;
      return;
    }
    case Stmt::Kind::Retry:
      if (AtomicDepth == 0)
        D.error(S.Where, "'retry' is only valid inside an atomic block");
      else if (OpenDepth > 0)
        D.error(S.Where, "'retry' may not appear inside an open block");
      return;
    case Stmt::Kind::Join: {
      auto &J = static_cast<JoinStmt &>(S);
      Type T = checkExpr(*J.Handle);
      if (T.Kind != Type::Int)
        D.error(J.Where, "join expects a thread handle of type int");
      return;
    }
    case Stmt::Kind::Print: {
      auto &Pr = static_cast<PrintStmt &>(S);
      Type T = checkExpr(*Pr.Value);
      if (T.Kind != Type::Int && T.Kind != Type::Bool)
        D.error(Pr.Where, "print expects an int or bool value");
      return;
    }
    case Stmt::Kind::Prints:
      return;
    }
  }

  bool isAssignable(const Expr &E) const {
    return E.K == Expr::Kind::VarRef || E.K == Expr::Kind::StaticRef ||
           E.K == Expr::Kind::FieldAccess || E.K == Expr::Kind::IndexAccess;
  }

  void expectBool(const Type &T, Loc Where) {
    if (T.Kind != Type::Bool)
      D.error(Where, "expected a bool condition, found " + T.str());
  }

  //===--------------------------------------------------------------------===
  // Expressions.
  //===--------------------------------------------------------------------===

  Type checkExpr(Expr &E) {
    Type T = checkExprImpl(E);
    E.Ty = T;
    return T;
  }

  Type checkCallArgs(const std::string &Callee, std::vector<ExprPtr> &Args,
                     Loc Where) {
    const FuncDecl *F = P.findFunc(Callee);
    if (!F) {
      D.error(Where, "call to unknown function '" + Callee + "'");
      for (ExprPtr &A : Args)
        checkExpr(*A);
      return Type::intTy();
    }
    if (Args.size() != F->Params.size()) {
      D.error(Where, "'" + Callee + "' expects " +
                         std::to_string(F->Params.size()) + " arguments, " +
                         std::to_string(Args.size()) + " given");
    }
    for (size_t I = 0; I < Args.size(); ++I) {
      Type ArgTy = checkExpr(*Args[I]);
      if (I < F->Params.size() && !F->Params[I].Ty.accepts(ArgTy))
        D.error(Args[I]->Where, "argument " + std::to_string(I + 1) +
                                    " of '" + Callee + "' expects " +
                                    F->Params[I].Ty.str() + ", found " +
                                    ArgTy.str());
    }
    return F->RetTy;
  }

  Type checkExprImpl(Expr &E) {
    switch (E.K) {
    case Expr::Kind::IntLit:
      return Type::intTy();
    case Expr::Kind::BoolLit:
      return Type::boolTy();
    case Expr::Kind::NullLit:
      return Type::nullTy();
    case Expr::Kind::VarRef: {
      auto &V = static_cast<VarRefExpr &>(E);
      if (const LocalVar *L = findLocal(V.Name)) {
        V.LocalIndex = L->Index;
        return L->Ty;
      }
      if (const StaticDecl *SD = P.findStatic(V.Name)) {
        V.LocalIndex = StaticRefBit | SD->Index;
        return SD->Ty;
      }
      D.error(V.Where, "use of undeclared identifier '" + V.Name + "'");
      return Type::intTy();
    }
    case Expr::Kind::StaticRef: {
      auto &R = static_cast<StaticRefExpr &>(E);
      const StaticDecl *SD = P.findStatic(R.Name);
      if (!SD) {
        D.error(R.Where, "unknown static '" + R.Name + "'");
        return Type::intTy();
      }
      R.StaticIndex = SD->Index;
      return SD->Ty;
    }
    case Expr::Kind::Binary: {
      auto &B = static_cast<BinaryExpr &>(E);
      Type L = checkExpr(*B.Lhs);
      Type R = checkExpr(*B.Rhs);
      switch (B.Op) {
      case BinOp::Add:
      case BinOp::Sub:
      case BinOp::Mul:
      case BinOp::Div:
      case BinOp::Rem:
        if (L.Kind != Type::Int || R.Kind != Type::Int)
          D.error(B.Where, "arithmetic requires int operands");
        return Type::intTy();
      case BinOp::Lt:
      case BinOp::Le:
      case BinOp::Gt:
      case BinOp::Ge:
        if (L.Kind != Type::Int || R.Kind != Type::Int)
          D.error(B.Where, "comparison requires int operands");
        return Type::boolTy();
      case BinOp::Eq:
      case BinOp::Ne:
        if (!L.accepts(R) && !R.accepts(L))
          D.error(B.Where, "cannot compare " + L.str() + " with " + R.str());
        return Type::boolTy();
      case BinOp::And:
      case BinOp::Or:
        if (L.Kind != Type::Bool || R.Kind != Type::Bool)
          D.error(B.Where, "logical operator requires bool operands");
        return Type::boolTy();
      }
      return Type::intTy();
    }
    case Expr::Kind::Unary: {
      auto &U = static_cast<UnaryExpr &>(E);
      Type T = checkExpr(*U.Sub);
      if (U.Op == UnOp::Neg) {
        if (T.Kind != Type::Int)
          D.error(U.Where, "unary '-' requires an int operand");
        return Type::intTy();
      }
      if (T.Kind != Type::Bool)
        D.error(U.Where, "'!' requires a bool operand");
      return Type::boolTy();
    }
    case Expr::Kind::Call: {
      auto &C = static_cast<CallExpr &>(E);
      return checkCallArgs(C.Callee, C.Args, C.Where);
    }
    case Expr::Kind::Spawn: {
      auto &Sp = static_cast<SpawnExpr &>(E);
      checkCallArgs(Sp.Callee, Sp.Args, Sp.Where);
      return Type::intTy(); // Thread handle.
    }
    case Expr::Kind::NewObject: {
      auto &N = static_cast<NewObjectExpr &>(E);
      if (!P.findClass(N.ClassName)) {
        D.error(N.Where, "unknown class '" + N.ClassName + "'");
        return Type::intTy();
      }
      return Type::classTy(N.ClassName);
    }
    case Expr::Kind::NewArray: {
      auto &N = static_cast<NewArrayExpr &>(E);
      Type LenTy = checkExpr(*N.Length);
      if (LenTy.Kind != Type::Int)
        D.error(N.Length->Where, "array length must be an int");
      if (N.ElemTy.Kind == Type::Int)
        return Type::intArrayTy();
      if (!P.findClass(N.ElemTy.ClassName)) {
        D.error(N.Where, "unknown class '" + N.ElemTy.ClassName + "'");
        return Type::intArrayTy();
      }
      return Type::refArrayTy(N.ElemTy.ClassName);
    }
    case Expr::Kind::FieldAccess: {
      auto &FA = static_cast<FieldAccessExpr &>(E);
      Type BaseTy = checkExpr(*FA.Base);
      if (BaseTy.Kind != Type::Class) {
        D.error(FA.Where, "field access on non-class type " + BaseTy.str());
        return Type::intTy();
      }
      const ClassDecl *C = P.findClass(BaseTy.ClassName);
      const FieldDecl *F = C ? C->findField(FA.FieldName) : nullptr;
      if (!F) {
        D.error(FA.Where, "class '" + BaseTy.ClassName + "' has no field '" +
                              FA.FieldName + "'");
        return Type::intTy();
      }
      FA.SlotIndex = F->SlotIndex;
      return F->Ty;
    }
    case Expr::Kind::IndexAccess: {
      auto &IA = static_cast<IndexAccessExpr &>(E);
      Type BaseTy = checkExpr(*IA.Base);
      Type IndexTy = checkExpr(*IA.Index);
      if (IndexTy.Kind != Type::Int)
        D.error(IA.Index->Where, "array index must be an int");
      if (BaseTy.Kind == Type::IntArray)
        return Type::intTy();
      if (BaseTy.Kind == Type::RefArray)
        return Type::classTy(BaseTy.ClassName);
      D.error(IA.Where, "indexing non-array type " + BaseTy.str());
      return Type::intTy();
    }
    case Expr::Kind::Len: {
      auto &L = static_cast<LenExpr &>(E);
      Type BaseTy = checkExpr(*L.Base);
      if (!BaseTy.isArray())
        D.error(L.Where, "len() requires an array");
      return Type::intTy();
    }
    }
    return Type::intTy();
  }

  Program &P;
  Diag &D;
  FuncDecl *CurFunc = nullptr;
  std::vector<LocalVar> Locals;
  size_t ScopeDepth = 0;
  uint32_t NextLocal = 0;
  unsigned AtomicDepth = 0;
  unsigned OpenDepth = 0;
};

} // namespace

void satm::tc::analyze(Program &P, Diag &D) { SemaImpl(P, D).run(); }
