//===- tc/Interp.h - Threaded TranC interpreter ----------------*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a lowered (and pass-annotated) TranC module on top of the SATM
/// runtime: atomic regions run as eager transactions with register-snapshot
/// re-execution, `spawn` creates real threads, and non-transactional heap
/// accesses honor the barrier annotations — Figure 9/10 isolation barriers
/// under strong mode, direct accesses under weak mode or where a pass
/// removed the barrier, and §6 aggregated barriers where the aggregation
/// pass formed groups.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_TC_INTERP_H
#define SATM_TC_INTERP_H

#include "rt/Heap.h"
#include "tc/Ir.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace satm {
namespace tc {

/// Interprets one module. Not reusable: construct, run once, inspect.
class Interp {
public:
  struct Options {
    /// Strong atomicity: annotated non-transactional accesses execute the
    /// isolation barriers. When false, every non-transactional access is a
    /// direct memory access (weak atomicity).
    bool StrongBarriers = true;
    /// Dynamic escape analysis (§4): objects are born private and the
    /// barriers use the Figure 10 fast paths. Installs itself into the
    /// global stm configuration for the duration of run().
    bool Dea = false;
    /// Per-thread executed-instruction budget (guards runaway programs in
    /// tests; 0 = unlimited).
    uint64_t MaxSteps = 200u * 1000 * 1000;
  };

  /// Thrown (internally) for runtime faults: null dereference, bounds,
  /// division by zero, step-budget exhaustion.
  struct RuntimeError {
    std::string Message;
  };

  Interp(const ir::Module &M, Options O);
  ~Interp();
  Interp(const Interp &) = delete;
  Interp &operator=(const Interp &) = delete;

  /// Executes main(). \returns true on success; on a runtime error returns
  /// false with the message in error().
  bool run();

  /// Everything the program printed (print/prints), in completion order.
  std::string output() const;

  /// First runtime error message, if any.
  std::string error() const;

private:
  stm::Word execFunction(uint32_t FuncId, std::vector<stm::Word> Args);
  void execFromEntry(uint32_t FuncId, std::vector<stm::Word> &Regs,
                     stm::Word &Ret);
  void threadMain(uint32_t FuncId, std::vector<stm::Word> Args);
  void emitOutput(const std::string &Text);

  const ir::Module &M;
  Options Opts;
  rt::Heap Heap;
  std::vector<std::unique_ptr<rt::TypeDescriptor>> ClassTypes;
  std::unique_ptr<rt::TypeDescriptor> IntArrayType;
  std::unique_ptr<rt::TypeDescriptor> RefArrayType;
  std::vector<rt::Object *> StaticCells;

  mutable std::mutex OutMutex;
  std::string Out;
  std::mutex ErrMutex;
  std::string Err;
  std::atomic<bool> HasError{false};

  std::mutex ThreadsMutex;
  std::unordered_map<int64_t, std::thread> Threads;
  std::atomic<int64_t> NextHandle{1};
};

} // namespace tc
} // namespace satm

#endif // SATM_TC_INTERP_H
