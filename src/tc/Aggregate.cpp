//===- tc/Aggregate.cpp - Barrier aggregation pass ------------------------===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "tc/Aggregate.h"

using namespace satm;
using namespace satm::tc;
using namespace satm::tc::ir;

namespace {

/// True for instructions that may sit between two accesses of a group:
/// pure register computation with no shared-memory or control effects.
bool isGroupTransparent(const Inst &I, RegId Base) {
  switch (I.K) {
  case Op::ConstInt:
  case Op::Move:
  case Op::Bin:
  case Op::Neg:
  case Op::Not:
  case Op::ArrayLen:
    return I.Dst != Base;
  default:
    return false;
  }
}

/// True if \p I is an object (field/element) access that still carries a
/// barrier and is eligible for aggregation. Static accesses are excluded:
/// each static is its own cell with its own record.
bool isAggregableAccess(const Inst &I) {
  if (!I.NeedsBarrier)
    return false;
  switch (I.K) {
  case Op::LoadField:
  case Op::StoreField:
  case Op::LoadElem:
  case Op::StoreElem:
    return true;
  default:
    return false;
  }
}

uint64_t runOnBlock(Block &B) {
  uint64_t Groups = 0;
  size_t N = B.Insts.size();
  size_t I = 0;
  while (I < N) {
    if (!isAggregableAccess(B.Insts[I])) {
      ++I;
      continue;
    }
    RegId Base = B.Insts[I].A;
    // Grow the group: accesses to Base, across transparent instructions.
    std::vector<size_t> Members{I};
    size_t J = I + 1;
    while (J < N) {
      const Inst &Next = B.Insts[J];
      if (isAggregableAccess(Next) && Next.A == Base) {
        Members.push_back(J);
        ++J;
        continue;
      }
      if (isGroupTransparent(Next, Base)) {
        ++J;
        continue;
      }
      break;
    }
    if (Members.size() >= 2) {
      B.Insts[Members.front()].Agg = AggRole::Open;
      for (size_t K = 1; K + 1 < Members.size(); ++K)
        B.Insts[Members[K]].Agg = AggRole::Member;
      B.Insts[Members.back()].Agg = AggRole::Close;
      ++Groups;
    }
    I = J;
  }
  return Groups;
}

} // namespace

uint64_t satm::tc::runBarrierAggregation(Module &M) {
  uint64_t Groups = 0;
  for (Function &F : M.Funcs)
    for (Block &B : F.Blocks)
      Groups += runOnBlock(B);
  return Groups;
}
