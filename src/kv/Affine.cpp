//===- kv/Affine.cpp - Shard-affine executor implementation --------------===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "kv/Affine.h"

#include "stm/Stats.h"
#include "stm/Txn.h"
#include "support/Backoff.h"

#include <algorithm>
#include <cassert>

using namespace satm;
using namespace satm::kv;

AffineExec::AffineExec(Store &Store, unsigned Workers)
    : S(Store), NumWorkers(Workers < 1 ? 1 : Workers), Solo(NumWorkers == 1),
      Pending(NumWorkers), Counters(NumWorkers), ActiveClients(NumWorkers) {
  Gates.reserve(NumWorkers);
  for (unsigned W = 0; W < NumWorkers; ++W)
    Gates.push_back(std::make_unique<stm::AffineGate>());
  Mailboxes.reserve(S.shards());
  for (uint32_t I = 0; I < S.shards(); ++I)
    Mailboxes.push_back(std::make_unique<Mailbox>());
  Pools.reserve(NumWorkers);
  for (unsigned W = 0; W < NumWorkers; ++W)
    Pools.push_back(std::make_unique<SlotPool>());
}

bool AffineExec::get(unsigned W, Word Key, Word &Out) {
  Counters[W].Local++;
  return S.get(Key, Out);
}

void AffineExec::execOwnedLocked(Request &R) {
  switch (R.K) {
  case Request::Kind::Put:
    // Existing key: plain probe + one release store, no record CAS.
    // Absent/erased key: the transactional insert, still on the
    // owned-record fast path via the caller's scope.
    R.Ok = S.putFastOwned(R.Key, R.Val) || S.insert(R.Key, R.Val);
    break;
  case Request::Kind::Erase:
    R.Ok = S.erase(R.Key);
    break;
  case Request::Kind::Cas:
    R.Ok = S.cas(R.Key, R.Expected, R.Val);
    break;
  }
}

void AffineExec::execFull(Request &R) {
  switch (R.K) {
  case Request::Kind::Put:
    R.Ok = S.put(R.Key, R.Val);
    break;
  case Request::Kind::Erase:
    R.Ok = S.erase(R.Key);
    break;
  case Request::Kind::Cas:
    R.Ok = S.cas(R.Key, R.Expected, R.Val);
    break;
  }
}

bool AffineExec::execSingle(unsigned W, Request &R) {
  if (Solo) {
    stm::OwnedFastScope Scope;
    execOwnedLocked(R);
    return true;
  }
  stm::AffineGate &G = *Gates[W];
  if (G.tryEnterOwned()) {
    stm::OwnedFastScope Scope;
    execOwnedLocked(R);
    G.exitOwned();
    return true;
  }
  // Foreign intent holds the gate: a cross-shard transaction may be
  // running against our shards right now, so take the full protocol.
  execFull(R);
  return false;
}

bool AffineExec::execGated(unsigned Owner, Request &R) {
  stm::AffineGate &G = *Gates[Owner];
  G.enterForeign();
  execFull(R);
  G.exitForeign();
  return R.Ok;
}

AffineExec::Request *AffineExec::allocSlot(unsigned W) {
  SlotPool &P = *Pools[W];
  for (size_t Tried = 0; Tried < P.Slots.size(); ++Tried) {
    Request &R = P.Slots[P.Scan];
    P.Scan = (P.Scan + 1) % P.Slots.size();
    // Acquire pairs with the owner's Done release so the slot's payload
    // fields are ours again before we overwrite them.
    if (R.State.load(std::memory_order_acquire) != Request::SlotQueued)
      return &R;
  }
  return nullptr;
}

bool AffineExec::routeBlind(unsigned W, Request::Kind K, Word Key, Word Val) {
  uint32_t Shard = S.shardOf(Key);
  unsigned Owner = ownerOf(Shard);
  if (Owner == W) {
    Request R;
    R.K = K;
    R.Key = Key;
    R.Val = Val;
    (execSingle(W, R) ? Counters[W].Local : Counters[W].Fallback)++;
    return R.Ok;
  }
  if (Request *R = allocSlot(W)) {
    R->K = K;
    R->Key = Key;
    R->Val = Val;
    R->State.store(Request::SlotQueued, std::memory_order_relaxed);
    // Count the hop before pushing so the owner's drain early-out can
    // never miss a parked request; undone if the push loses.
    Pending[Owner].N.fetch_add(1, std::memory_order_release);
    // The mailbox push releases the payload to the owner; the owner's
    // Done store releases the slot back to us.
    if (Mailboxes[Shard]->tryPush(R)) {
      Counters[W].Hop++;
      if (stm::config().CollectStats)
        stm::statsForThisThread().AffineHops++;
      return true; // Accepted; applied on the owner's next drain.
    }
    Pending[Owner].N.fetch_sub(1, std::memory_order_release);
    R->State.store(Request::SlotFree, std::memory_order_relaxed);
  }
  // Mailbox full or no free slot: backpressure. Run it ourselves,
  // synchronously, behind the owner's gate.
  Counters[W].Cross++;
  Request R;
  R.K = K;
  R.Key = Key;
  R.Val = Val;
  return execGated(Owner, R);
}

bool AffineExec::put(unsigned W, Word Key, Word Val) {
  return routeBlind(W, Request::Kind::Put, Key, Val);
}

bool AffineExec::erase(unsigned W, Word Key) {
  return routeBlind(W, Request::Kind::Erase, Key, /*Val=*/0);
}

bool AffineExec::cas(unsigned W, Word Key, Word Expected, Word Desired) {
  unsigned Owner = ownerOf(S.shardOf(Key));
  Request R;
  R.K = Request::Kind::Cas;
  R.Key = Key;
  R.Val = Desired;
  R.Expected = Expected;
  if (Owner == W) {
    (execSingle(W, R) ? Counters[W].Local : Counters[W].Fallback)++;
    return R.Ok;
  }
  // Result-bearing: the caller needs the real outcome, so no pipelining.
  Counters[W].Cross++;
  return execGated(Owner, R);
}

namespace {

/// Distinct foreign *owners* of a multi-key op's footprint, plus whether
/// any key lands in the caller's own shards. Gating per owner instead of
/// per shard caps the handshake count at NumWorkers - 1 no matter how
/// many shards the batch touches.
struct OwnerSplit {
  unsigned Foreign[64];
  size_t NForeign = 0;
  bool SelfInvolved = false;
};

void collectOwners(const Store &S, unsigned W, unsigned NumWorkers,
                   const Word *Keys, size_t N, OwnerSplit &Out) {
  assert(N <= 64 && "multi-key ops are capped at 64 keys");
  for (size_t I = 0; I < N; ++I) {
    unsigned Owner = S.shardOf(Keys[I]) % NumWorkers;
    if (Owner == W) {
      Out.SelfInvolved = true;
      continue;
    }
    if (std::find(Out.Foreign, Out.Foreign + Out.NForeign, Owner) ==
        Out.Foreign + Out.NForeign)
      Out.Foreign[Out.NForeign++] = Owner;
  }
}

} // namespace

template <typename F>
void AffineExec::runCross(const unsigned *ForeignOwners, size_t NForeign,
                          F &&Body) {
  // Publish intent on every foreign gate first, then wait each window
  // out. Deadlock-free: owners never wait (they retreat to the full
  // protocol), and we hold no transaction or record while waiting.
  for (size_t I = 0; I < NForeign; ++I)
    Gates[ForeignOwners[I]]->enterForeign();
  Body();
  for (size_t I = 0; I < NForeign; ++I)
    Gates[ForeignOwners[I]]->exitForeign();
}

size_t AffineExec::multiGet(unsigned W, const Word *Keys, size_t N,
                            Word *Out) {
  if (Solo) {
    stm::OwnedFastScope Scope;
    Counters[W].Local++;
    return S.multiGet(Keys, N, Out);
  }
  OwnerSplit Split;
  collectOwners(S, W, NumWorkers, Keys, N, Split);
  if (Split.NForeign == 0) {
    // Entirely within our own shards: one window covers them all.
    if (Gates[W]->tryEnterOwned()) {
      stm::OwnedFastScope Scope;
      size_t R = S.multiGet(Keys, N, Out);
      Gates[W]->exitOwned();
      Counters[W].Local++;
      return R;
    }
    Counters[W].Fallback++;
    return S.multiGet(Keys, N, Out);
  }
  Counters[W].Cross++;
  if (stm::config().CollectStats)
    stm::statsForThisThread().AffineHops += Split.NForeign;
  size_t R = 0;
  runCross(Split.Foreign, Split.NForeign,
           [&] { R = S.multiGet(Keys, N, Out); });
  return R;
}

bool AffineExec::rmwAdd(unsigned W, const Word *Keys, size_t N, Word Delta) {
  if (Solo) {
    stm::OwnedFastScope Scope;
    Counters[W].Local++;
    return S.rmwAdd(Keys, N, Delta);
  }
  OwnerSplit Split;
  collectOwners(S, W, NumWorkers, Keys, N, Split);
  if (Split.NForeign == 0) {
    if (Gates[W]->tryEnterOwned()) {
      stm::OwnedFastScope Scope;
      bool R = S.rmwAdd(Keys, N, Delta);
      Gates[W]->exitOwned();
      Counters[W].Local++;
      return R;
    }
    Counters[W].Fallback++;
    return S.rmwAdd(Keys, N, Delta);
  }
  Counters[W].Cross++;
  if (stm::config().CollectStats)
    stm::statsForThisThread().AffineHops += Split.NForeign;
  bool R = false;
  runCross(Split.Foreign, Split.NForeign,
           [&] { R = S.rmwAdd(Keys, N, Delta); });
  return R;
}

void AffineExec::drain(unsigned W) {
  if (Solo)
    return; // Nobody to hop from.
  if (Pending[W].N.load(std::memory_order_acquire) == 0)
    return;
  uint64_t Served = 0;
  // Open our window once for the whole burst: one gate handshake
  // amortized over every request parked across all our shards.
  stm::AffineGate &G = *Gates[W];
  bool Owned = G.tryEnterOwned();
  for (uint32_t Shard = W; Shard < S.shards(); Shard += NumWorkers) {
    Mailbox &Q = *Mailboxes[Shard];
    Request *R;
    while (Q.tryPop(R)) {
      if (Owned) {
        stm::OwnedFastScope Scope;
        execOwnedLocked(*R);
      } else {
        execFull(*R);
      }
      R->State.store(Request::SlotDone, std::memory_order_release);
      ++Served;
      // A cross-shard transaction is waiting on our window: yield it and
      // finish the burst on the full protocol rather than stall a
      // foreign transaction behind a long drain.
      if (Owned && G.foreignIntents() != 0) {
        G.exitOwned();
        Owned = false;
      }
    }
  }
  if (Owned)
    G.exitOwned();
  if (Served)
    Pending[W].N.fetch_sub(Served, std::memory_order_release);
}

void AffineExec::flush(unsigned W) {
  SlotPool &P = *Pools[W];
  Backoff B;
  for (Request &R : P.Slots) {
    while (R.State.load(std::memory_order_acquire) == Request::SlotQueued) {
      // Serve our own shards while we wait: owners flushing against each
      // other keep making progress, so this terminates.
      drain(W);
      B.pause();
    }
    B.reset();
  }
}

void AffineExec::clientDone() {
  ActiveClients.fetch_sub(1, std::memory_order_release);
}

void AffineExec::runUntilQuiet(unsigned W) {
  Backoff B;
  while (ActiveClients.load(std::memory_order_acquire) != 0) {
    drain(W);
    B.pause();
  }
  // Every client is done: no new hops can arrive, flush the residue.
  drain(W);
}

AffineExec::Metrics AffineExec::metrics() const {
  Metrics M;
  for (const WorkerCounters &C : Counters) {
    M.LocalOps += C.Local;
    M.FallbackOps += C.Fallback;
    M.HopOps += C.Hop;
    M.CrossOps += C.Cross;
  }
  for (const auto &Q : Mailboxes)
    M.MaxQueueDepth = std::max(M.MaxQueueDepth, Q->maxDepth());
  return M;
}
