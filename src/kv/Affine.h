//===- kv/Affine.h - Shard-affine executor over the SATM-KV store -*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shard-affine execution mode of SATM-KV (DESIGN.md §11), following
/// KVell's shard-per-worker lesson: the symmetric executor lets every
/// worker transact against every shard, so past ~4 threads the shared
/// record CASes and contention-manager traffic eat the added cores
/// (closed_t8 < closed_t4 in EXPERIMENTS.md). Here each shard is *owned*
/// by exactly one worker:
///
///  - Single-key writes on an owned shard run under the owner's
///    AffineGate window on the *owned-record fast path*
///    (stm::OwnedFastScope): plain-store lock words instead of CAS
///    acquireExclusive, reads without read-set logging, no validation, no
///    contention-manager entry. Overwrites of existing keys skip records
///    entirely (Store::putFastOwned).
///  - Blind single-key writes (put / erase) on a foreign shard are
///    *pipelined*: the requester parks the request in the owning worker's
///    bounded MPSC mailbox (support/ShardQueue.h) and immediately moves
///    on; the owner applies it on its next drain. The return value of a
///    hopped write means "accepted", its effect becomes visible when the
///    owner drains, and same-client ordering across the hop/direct
///    boundary is not preserved — flush() is the write barrier. This is
///    the shard-per-worker completion model: a synchronous hop would
///    stall the requester for an owner scheduling quantum per write,
///    which inverts the entire win on loaded machines.
///  - Result-bearing single-key ops on a foreign shard (cas) run
///    synchronously under the full protocol behind the owner's gate, as
///    do hops that find the mailbox full (backpressure never blocks).
///  - Multi-key transactions (multiGet / rmwAdd) spanning foreign shards
///    publish foreign intent on each foreign owner's gate, wait out any
///    open fast-path window, and run the full CAS protocol — the paper's
///    machinery is the *slow path* that makes cross-shard atomicity
///    correct, not the per-op tax.
///  - GETs run directly from any worker through the non-transactional
///    read barrier: read-only probes don't bounce cache lines, so routing
///    them through the owner would only add latency. A GET may miss this
///    client's own not-yet-drained hopped write (see flush()).
///
/// Hopped requests live in a fixed per-worker slot pool inside the
/// executor (never on the requester's stack): a slot is recycled only
/// after its owner published Done, so there is no lifetime race, and an
/// exhausted pool simply degrades to the synchronous gated path.
///
/// Serializability of the mix is explored by tests/check/
/// AffineExploreTest.cpp (owned fast path + cross-shard transaction
/// miniature); the gate handshake itself is documented in
/// stm/AffineGate.h.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_KV_AFFINE_H
#define SATM_KV_AFFINE_H

#include "kv/Store.h"
#include "stm/AffineGate.h"
#include "support/ShardQueue.h"

#include <array>
#include <atomic>
#include <memory>
#include <vector>

namespace satm {
namespace kv {

class AffineExec {
public:
  /// Binds \p NumWorkers workers to \p S's shards round-robin:
  /// ownerOf(Shard) = Shard % NumWorkers. Workers identify themselves by
  /// index in every call; worker \p W must only ever be driven by one
  /// thread (the single-consumer side of its mailboxes and the single
  /// allocator of its hop-slot pool). While a run is in flight, every
  /// access to \p S must go through a registered worker — the gates only
  /// arbitrate between workers, and with NumWorkers == 1 they are
  /// elided outright.
  AffineExec(Store &S, unsigned NumWorkers);

  unsigned workers() const { return NumWorkers; }
  unsigned ownerOf(uint32_t Shard) const { return Shard % NumWorkers; }

  //===--------------------------------------------------------------------===
  // Operations (called by worker \p W on its own thread).
  //===--------------------------------------------------------------------===

  /// Single-key read, executed directly (no routing, no gate).
  bool get(unsigned W, Word Key, Word &Out);

  /// Single-key upsert. Owned: fast path. Foreign: pipelined hop (returns
  /// true = accepted) or gated fallback under backpressure.
  bool put(unsigned W, Word Key, Word Val);

  /// Single-key erase. Owned: fast path, returns whether the key was
  /// live. Foreign: pipelined hop — returns true = accepted, NOT whether
  /// the key existed.
  bool erase(unsigned W, Word Key);

  /// Single-key compare-and-swap: owned fast path, or synchronous gated
  /// full protocol when foreign (the result is always the real outcome).
  bool cas(unsigned W, Word Key, Word Expected, Word Desired);

  /// Atomic multi-get; runs owned-fast when every key lands in \p W's own
  /// shards, else full-protocol behind the foreign shards' gates.
  size_t multiGet(unsigned W, const Word *Keys, size_t N, Word *Out);

  /// Atomic multi-key add; same routing as multiGet.
  bool rmwAdd(unsigned W, const Word *Keys, size_t N, Word Delta);

  //===--------------------------------------------------------------------===
  // Lifecycle.
  //===--------------------------------------------------------------------===

  /// Executes every request currently parked in \p W's mailboxes. Cheap
  /// when empty (one acquire load per owned shard); call between
  /// generated operations.
  void drain(unsigned W);

  /// Write barrier: returns once every hop \p W ever issued has been
  /// applied by its owner. Drains \p W's own mailboxes while waiting, so
  /// concurrent flushes cannot deadlock.
  void flush(unsigned W);

  /// Worker \p W will generate no more operations of its own.
  void clientDone();

  /// Keeps draining \p W's mailboxes until every worker has called
  /// clientDone(), then drains the residue. Only after every worker
  /// returns from here may the workers be joined — a hop parked in \p W's
  /// mailbox would otherwise never execute.
  void runUntilQuiet(unsigned W);

  //===--------------------------------------------------------------------===
  // Introspection (stable only after workers joined).
  //===--------------------------------------------------------------------===

  struct Metrics {
    uint64_t LocalOps = 0;    ///< Ops completed under an owned window.
    uint64_t FallbackOps = 0; ///< Owned-shard ops that ran full protocol
                              ///< (foreign intent had the gate).
    uint64_t HopOps = 0;      ///< Single-key writes hopped to their owner.
    uint64_t CrossOps = 0;    ///< Multi-key ops spanning foreign shards,
                              ///< plus gated synchronous singles.
    uint64_t MaxQueueDepth = 0; ///< Deepest mailbox high-water mark.
    uint64_t total() const {
      return LocalOps + FallbackOps + HopOps + CrossOps;
    }
    /// Share of ops that left their worker's shard set.
    double crossRatio() const {
      uint64_t T = total();
      return T ? double(HopOps + CrossOps) / double(T) : 0.0;
    }
  };
  Metrics metrics() const;

private:
  /// A hopped single-key request. Lives in its issuer's SlotPool; State
  /// is the recycling handshake (the mailbox push/pop publishes the
  /// payload fields themselves).
  struct Request {
    enum class Kind : uint8_t { Put, Erase, Cas };
    static constexpr uint8_t SlotFree = 0;   ///< Never used / harvested.
    static constexpr uint8_t SlotQueued = 1; ///< In a mailbox or executing.
    static constexpr uint8_t SlotDone = 2;   ///< Owner applied it.
    Kind K;
    Word Key;
    Word Val;
    Word Expected;
    bool Ok = false;
    std::atomic<uint8_t> State{SlotFree};
  };

  /// Mailbox: 1024 parked requests per shard; a full queue falls back to
  /// the gated direct path, it never blocks the producer.
  using Mailbox = ShardQueue<Request *, 10>;

  /// Per-worker pool of in-flight hop requests. Only worker \p W
  /// allocates from pool \p W (plain cursor); owners release slots with
  /// a Done store. Exhaustion degrades to the synchronous gated path.
  /// Sized for deep pipelines: on an oversubscribed machine the owner
  /// may not run for a scheduling quantum, and every exhaustion event
  /// converts a ~100ns enqueue into a ~1µs gated round trip.
  struct alignas(64) SlotPool {
    std::array<Request, 512> Slots;
    size_t Scan = 0;
  };

  /// Per-owner count of hops parked in that owner's mailboxes, padded to
  /// its own line: lets drain() be one acquire load of a mostly-own line
  /// in the common empty case instead of a walk over every owned shard's
  /// mailbox head.
  struct alignas(64) PendingCell {
    std::atomic<uint64_t> N{0};
  };

  /// Per-worker counters, line-padded: each cell is written by exactly
  /// one worker thread and summed after join.
  struct alignas(64) WorkerCounters {
    uint64_t Local = 0;
    uint64_t Fallback = 0;
    uint64_t Hop = 0;
    uint64_t Cross = 0;
  };

  /// Executes \p R against a shard owned by \p W: owned fast path when
  /// \p W's gate window opens, full protocol otherwise. \returns true
  /// iff the fast path ran.
  bool execSingle(unsigned W, Request &R);

  /// Applies \p R assuming the caller already holds the owned window (or
  /// runs solo); must be inside an OwnedFastScope.
  void execOwnedLocked(Request &R);

  /// Applies \p R through the full protocol, no window held.
  void execFull(Request &R);

  /// Synchronous full-protocol execution behind \p Owner's gate.
  bool execGated(unsigned Owner, Request &R);

  /// Routes a blind single-key write: local execute, pipelined hop, or
  /// gated fallback.
  bool routeBlind(unsigned W, Request::Kind K, Word Key, Word Val);

  /// \returns a free slot from \p W's pool, or nullptr (pool exhausted).
  Request *allocSlot(unsigned W);

  /// Gated full-protocol runner for multi-key ops: publishes foreign
  /// intent on each of the \p NForeign foreign owners' gates, runs
  /// \p Body, withdraws.
  template <typename F>
  void runCross(const unsigned *ForeignOwners, size_t NForeign, F &&Body);

  Store &S;
  unsigned NumWorkers;
  /// One worker means no other executor thread can ever race a window:
  /// every op is owned and the gates (and drains) are skipped entirely.
  bool Solo;
  /// One gate per *owner*, not per shard: a worker's shards share one
  /// fast-window, so a cross-shard transaction pays at most
  /// NumWorkers - 1 gate entries instead of one per distinct shard, and
  /// an owner opens a single window for a whole drain burst. Coarser
  /// exclusion (a foreign intent pauses all of that owner's windows) is
  /// a fair trade for the per-transaction handshake count.
  std::vector<std::unique_ptr<stm::AffineGate>> Gates;  ///< Per worker.
  std::vector<std::unique_ptr<Mailbox>> Mailboxes;      ///< Per shard.
  std::vector<std::unique_ptr<SlotPool>> Pools;         ///< Per worker.
  std::vector<PendingCell> Pending;                     ///< Per worker.
  std::vector<WorkerCounters> Counters;                 ///< Per worker.
  std::atomic<unsigned> ActiveClients;
};

} // namespace kv
} // namespace satm

#endif // SATM_KV_AFFINE_H
