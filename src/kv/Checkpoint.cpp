//===- kv/Checkpoint.cpp - Snapshot-consistent checkpoints ---------------===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "kv/Checkpoint.h"

#include "kv/Store.h"
#include "support/FaultInjector.h"
#include "support/Stopwatch.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <unistd.h>

using namespace satm;
using namespace satm::kv;

namespace {

constexpr uint64_t HeaderMagic = 0x534154434b505431ull;  // "SATCKPT1"
constexpr uint64_t TrailerMagic = 0x534154434b50457eull; // "SATCKPE~"
constexpr uint64_t CheckpointVersion = 1;

/// Same SplitMix-style seeded combine the WAL records use, so an
/// all-zero frame or entry never checksums to zero.
uint64_t mixChecksum(const uint64_t *W, size_t N) {
  uint64_t H = 0x7c15d5a3b611f8c9ull;
  for (size_t I = 0; I < N; ++I) {
    H ^= W[I] + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
    H = (H ^ (H >> 30)) * 0xbf58476d1ce4e5b9ull;
  }
  return H ^ (H >> 31);
}

uint64_t headerCheck(uint64_t Lsn) {
  const uint64_t W[3] = {HeaderMagic, CheckpointVersion, Lsn};
  return mixChecksum(W, 3);
}

uint64_t trailerCheck(uint64_t Count, uint64_t Lsn) {
  const uint64_t W[3] = {TrailerMagic, Count, Lsn};
  return mixChecksum(W, 3);
}

/// Per-entry checksum binds the pair to its ordinal and the barrier, so
/// shuffled, duplicated or cross-file-spliced entries fail too.
uint64_t entryCheck(Word Key, Word Val, uint64_t Ordinal, uint64_t Lsn) {
  const uint64_t W[4] = {Key, Val, Ordinal, Lsn};
  return mixChecksum(W, 4);
}

bool writeAll(int Fd, const uint8_t *P, size_t N) {
  size_t Off = 0;
  while (Off < N) {
    ssize_t W = ::write(Fd, P + Off, N - Off);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += size_t(W);
  }
  return true;
}

void fsyncDir(const std::string &Dir) {
  int DirFd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (DirFd >= 0) {
    ::fsync(DirFd);
    ::close(DirFd);
  }
}

} // namespace

std::string ckpt::checkpointFile(const std::string &Dir, uint64_t Lsn) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "/ckpt-%020llu.ckpt",
                (unsigned long long)Lsn);
  return Dir + Buf;
}

std::vector<uint64_t> ckpt::listCheckpoints(const std::string &Dir) {
  std::vector<uint64_t> Out;
  std::error_code Ec;
  for (const auto &E : std::filesystem::directory_iterator(Dir, Ec)) {
    const std::string Name = E.path().filename().string();
    unsigned long long Lsn = 0;
    int Consumed = 0;
    if (std::sscanf(Name.c_str(), "ckpt-%20llu.ckpt%n", &Lsn, &Consumed) ==
            1 &&
        Consumed == int(Name.size()))
      Out.push_back(Lsn);
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

bool ckpt::writeCheckpoint(const std::string &Dir, const CheckpointImage &Img,
                           std::string *Err) {
  auto Fail = [&](const char *What, const std::string &Path) {
    if (Err)
      *Err = std::string("checkpoint ") + What + " failed for '" + Path +
             "': " + std::strerror(errno);
    return false;
  };
  const std::string Path = checkpointFile(Dir, Img.Lsn);
  const std::string Tmp = Path + ".tmp";
  int Fd = ::open(Tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (Fd < 0)
    return Fail("open", Tmp);
  bool Ok = true;
  // Header, entries, trailer — buffered into one contiguous byte vector
  // so a checkpoint is a single sequential write burst.
  std::vector<uint8_t> Buf;
  Buf.reserve(32 + Img.Entries.size() * 24 + 32);
  auto PutWords = [&Buf](const uint64_t *W, size_t N) {
    const uint8_t *P = reinterpret_cast<const uint8_t *>(W);
    Buf.insert(Buf.end(), P, P + N * sizeof(uint64_t));
  };
  {
    const uint64_t H[4] = {HeaderMagic, CheckpointVersion, Img.Lsn,
                           headerCheck(Img.Lsn)};
    PutWords(H, 4);
  }
  for (size_t I = 0; I < Img.Entries.size(); ++I) {
    const uint64_t E[3] = {
        Img.Entries[I].first, Img.Entries[I].second,
        entryCheck(Img.Entries[I].first, Img.Entries[I].second, I, Img.Lsn)};
    PutWords(E, 3);
  }
  {
    const uint64_t T[4] = {TrailerMagic, Img.Entries.size(), Img.Lsn,
                           trailerCheck(Img.Entries.size(), Img.Lsn)};
    PutWords(T, 4);
  }
  // Injected ENOSPC/EIO on the data path; real write errors behave the
  // same — abandon the attempt, keep the previous checkpoint.
  if (faultPoint(FaultSite::CkptWrite)) {
    errno = ENOSPC;
    Ok = false;
  }
  if (Ok && !writeAll(Fd, Buf.data(), Buf.size()))
    Ok = false;
  if (Ok && ::fsync(Fd) < 0)
    Ok = false;
  ::close(Fd);
  if (!Ok) {
    ::unlink(Tmp.c_str());
    return Fail("write", Tmp);
  }
  // The rename is the atomic publication point: before it the file is
  // invisible to recovery (wrong suffix), after it the fully-fsynced
  // image shadows nothing until the directory entry itself is durable.
  if (faultPoint(FaultSite::CkptRename)) {
    errno = EIO;
    ::unlink(Tmp.c_str());
    return Fail("rename", Path);
  }
  if (::rename(Tmp.c_str(), Path.c_str()) < 0) {
    ::unlink(Tmp.c_str());
    return Fail("rename", Path);
  }
  fsyncDir(Dir);
  return true;
}

bool ckpt::loadCheckpoint(const std::string &Path, uint64_t ExpectLsn,
                          CheckpointImage &Out) {
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  bool Ok = false;
  std::vector<std::pair<Word, Word>> Entries;
  do {
    uint64_t H[4];
    if (std::fread(H, 1, sizeof(H), F) != sizeof(H))
      break;
    if (H[0] != HeaderMagic || H[1] != CheckpointVersion ||
        H[2] != ExpectLsn || H[3] != headerCheck(H[2]))
      break;
    // Entry count comes from the trailer; derive it from the file size
    // first so a torn tail (missing/short trailer) fails cleanly here.
    std::fseek(F, 0, SEEK_END);
    long Size = std::ftell(F);
    if (Size < 64 || (Size - 64) % 24 != 0)
      break;
    const uint64_t Count = uint64_t(Size - 64) / 24;
    std::fseek(F, 32, SEEK_SET);
    Entries.reserve(Count);
    bool Damaged = false;
    for (uint64_t I = 0; I < Count; ++I) {
      uint64_t E[3];
      if (std::fread(E, 1, sizeof(E), F) != sizeof(E) ||
          E[2] != entryCheck(E[0], E[1], I, ExpectLsn)) {
        Damaged = true;
        break;
      }
      Entries.emplace_back(E[0], E[1]);
    }
    if (Damaged)
      break;
    uint64_t T[4];
    if (std::fread(T, 1, sizeof(T), F) != sizeof(T))
      break;
    if (T[0] != TrailerMagic || T[1] != Count || T[2] != ExpectLsn ||
        T[3] != trailerCheck(T[1], T[2]))
      break;
    Ok = true;
  } while (false);
  std::fclose(F);
  if (Ok) {
    Out.Lsn = ExpectLsn;
    Out.Entries = std::move(Entries);
  }
  return Ok;
}

ckpt::LoadResult ckpt::loadNewestValid(const std::string &Dir,
                                       CheckpointImage &Out) {
  LoadResult R;
  std::vector<uint64_t> Lsns = listCheckpoints(Dir);
  for (auto It = Lsns.rbegin(); It != Lsns.rend(); ++It) {
    if (loadCheckpoint(checkpointFile(Dir, *It), *It, Out)) {
      R.Loaded = true;
      return R;
    }
    ++R.Discarded;
  }
  Out.Lsn = 0;
  Out.Entries.clear();
  return R;
}

void ckpt::removeCheckpointsBelow(const std::string &Dir, uint64_t KeepLsn) {
  for (uint64_t Lsn : listCheckpoints(Dir))
    if (Lsn < KeepLsn)
      ::unlink(checkpointFile(Dir, Lsn).c_str());
}

//===----------------------------------------------------------------------===
// Checkpointer (background writer).
//===----------------------------------------------------------------------===

Checkpointer::Checkpointer(Store &S, Wal &W, const Config &C)
    : S(S), W(W), Cfg(C) {
  // Resume rotation where a previous incarnation left off: the two
  // newest on-disk barriers are the retained generations (recover()
  // already vouched for — or discarded — their content).
  std::vector<uint64_t> Lsns = ckpt::listCheckpoints(W.dir());
  if (!Lsns.empty())
    NewestLsn = Lsns.back();
  if (Lsns.size() >= 2)
    PrevLsn = Lsns[Lsns.size() - 2];
}

Checkpointer::~Checkpointer() { stop(); }

void Checkpointer::start() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Running)
    return;
  Stopping = false;
  Running = true;
  LastTriggerRecords = W.stats().RecordsAppended;
  Worker = std::thread([this] { loop(); });
}

void Checkpointer::stop() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (!Running)
      return;
    Stopping = true;
  }
  Cv.notify_all();
  Worker.join();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Running = false;
  }
}

void Checkpointer::loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> Lock(Mu);
      Cv.wait_for(Lock, std::chrono::milliseconds(Cfg.PollMs),
                  [&] { return Stopping; });
      if (Stopping)
        return;
    }
    if (Cfg.IntervalOps == 0)
      continue;
    const uint64_t Appended = W.stats().RecordsAppended;
    if (Appended - LastTriggerRecords < Cfg.IntervalOps)
      continue;
    LastTriggerRecords = Appended;
    std::string Err;
    if (!runOnce(&Err))
      std::fprintf(stderr, "satm: %s (previous checkpoint retained)\n",
                   Err.c_str());
  }
}

bool Checkpointer::runOnce(std::string *Err) {
  Stopwatch Timer;
  // Scan under one pinned epoch; the epoch→LSN conversion is exact (see
  // Wal::lsnOfTicket). The image is staged in memory so no file I/O —
  // and no fault site — runs inside the snapshot region.
  ckpt::CheckpointImage Img;
  const uint64_t Epoch = S.snapshotScan(
      [&Img](Word K, Word V) { Img.Entries.emplace_back(K, V); });
  Img.Lsn = W.lsnOfTicket(Epoch);
  if (Img.Lsn <= NewestLsn) {
    // No new history since the last barrier — a successful no-op.
    StatTotalMicros.fetch_add(uint64_t(Timer.millis() * 1000),
                              std::memory_order_relaxed);
    return true;
  }
  StatAttempts.fetch_add(1, std::memory_order_relaxed);
  std::string LocalErr;
  if (!ckpt::writeCheckpoint(W.dir(), Img, &LocalErr)) {
    StatFailures.fetch_add(1, std::memory_order_relaxed);
    StatTotalMicros.fetch_add(uint64_t(Timer.millis() * 1000),
                              std::memory_order_relaxed);
    if (Err)
      *Err = LocalErr;
    return false;
  }
  // Retire history: with Img published, the prior newest checkpoint
  // becomes the fallback generation. Older checkpoints go, and the WAL
  // is truncated below the *fallback's* barrier — its suffix is exactly
  // what recovery needs if Img is later found corrupt. Rotation is a
  // no-op until the second checkpoint exists.
  if (NewestLsn > 0) {
    ckpt::removeCheckpointsBelow(W.dir(), NewestLsn);
    uint64_t Removed = W.truncateBelow(NewestLsn);
    StatTruncatedBytes.fetch_add(Removed, std::memory_order_relaxed);
  }
  PrevLsn = NewestLsn;
  NewestLsn = Img.Lsn;
  StatWritten.fetch_add(1, std::memory_order_relaxed);
  StatLastLsn.store(Img.Lsn, std::memory_order_relaxed);
  StatLastEntries.store(Img.Entries.size(), std::memory_order_relaxed);
  StatTotalMicros.fetch_add(uint64_t(Timer.millis() * 1000),
                            std::memory_order_relaxed);
  return true;
}

CheckpointStats Checkpointer::stats() const {
  CheckpointStats C;
  C.Attempts = StatAttempts.load(std::memory_order_relaxed);
  C.Written = StatWritten.load(std::memory_order_relaxed);
  C.Failures = StatFailures.load(std::memory_order_relaxed);
  C.LastLsn = StatLastLsn.load(std::memory_order_relaxed);
  C.LastEntries = StatLastEntries.load(std::memory_order_relaxed);
  C.WalTruncatedBytes = StatTruncatedBytes.load(std::memory_order_relaxed);
  C.TotalMillis =
      double(StatTotalMicros.load(std::memory_order_relaxed)) / 1000.0;
  return C;
}
