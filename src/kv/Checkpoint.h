//===- kv/Checkpoint.h - Snapshot-consistent checkpoints -------*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checkpoint + compaction plane that bounds crash recovery
/// (DESIGN.md §14; ROADMAP item 1 follow-up). A background checkpointer
/// periodically:
///
///   1. pins a snapshot epoch and streams every live (key, value) pair —
///      and every erasure, as a Tombstone entry — out of the store via
///      Store::snapshotScan. The snapshot plane guarantees the scan sees
///      exactly the commits with publish ticket <= the pinned epoch E, a
///      prefix of commit order, without blocking writers;
///   2. converts E into the checkpoint barrier LSN via Wal::lsnOfTicket
///      (WAL records are appended inside the publish window, so LSN
///      order *is* ticket order) and writes the image to
///      ckpt-<lsn>.ckpt using write-temp → fsync → rename → fsync-dir.
///      A torn or half-written checkpoint therefore never shadows the
///      previous valid one — the rename is the atomic publication point;
///   3. retires history: checkpoints older than the *previous* one are
///      deleted and the WAL is truncated below the previous barrier
///      (Wal::truncateBelow). Two generations stay on disk by design —
///      if the newest checkpoint is later found corrupt, recovery falls
///      back to the previous one, and the WAL suffix it needs (records
///      above the *previous* barrier) is exactly what retention kept.
///
/// Wal::recover consumes the other end: it loads the newest valid
/// checkpoint (ckpt::loadNewestValid), applies the image, and replays
/// only WAL records above the barrier — recovery time proportional to
/// the checkpoint interval, not to history.
///
/// Checkpoint I/O failures (real, or the ckpt_write / ckpt_rename fault
/// sites) are non-fatal and do not touch the WAL's health: the attempt
/// is abandoned, the temp file removed, the failure counted, and the
/// previous checkpoint stays authoritative — compaction merely pauses,
/// durability is untouched. (The reverse coupling is also one-way: a
/// *degraded* WAL keeps checkpointing, which is then the only durability
/// the process still makes.)
///
/// File format (host-endian words, like the WAL):
///   header  [Magic, Version, Lsn, Check]                      32 bytes
///   entries [Key, Val, Check(Key, Val, ordinal, Lsn)]  24 bytes each
///   trailer [TrailerMagic, EntryCount, Lsn, Check]            32 bytes
/// Every checksum is seeded so all-zero never validates; a short tail
/// loses the trailer and invalidates the file, a bit-flip anywhere fails
/// its record or frame checksum. Val == Store Tombstone encodes "erased
/// as of the barrier".
///
//===----------------------------------------------------------------------===//

#ifndef SATM_KV_CHECKPOINT_H
#define SATM_KV_CHECKPOINT_H

#include "kv/Wal.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace satm {
namespace kv {

class Store;

namespace ckpt {

/// A decoded checkpoint: the barrier LSN and the (key, value) image.
/// Val == Tombstone means the key was erased as of the barrier.
struct CheckpointImage {
  uint64_t Lsn = 0;
  std::vector<std::pair<Word, Word>> Entries;
};

/// Outcome of loadNewestValid.
struct LoadResult {
  bool Loaded = false;    ///< A valid checkpoint was applied to Out.
  uint64_t Discarded = 0; ///< Newer-but-invalid checkpoints skipped.
};

/// Path of the checkpoint with barrier \p Lsn inside \p Dir
/// (zero-padded so lexicographic order is numeric order).
std::string checkpointFile(const std::string &Dir, uint64_t Lsn);

/// Barrier LSNs of every checkpoint file in \p Dir, ascending. Purely
/// name-based (no validation).
std::vector<uint64_t> listCheckpoints(const std::string &Dir);

/// Writes \p Img to its checkpoint file via write-temp → fsync → rename
/// → fsync-dir. Returns false (and fills \p Err) on any I/O failure or
/// injected ckpt_write/ckpt_rename fault; the temp file is removed and
/// no existing checkpoint is disturbed.
bool writeCheckpoint(const std::string &Dir, const CheckpointImage &Img,
                     std::string *Err);

/// Strict single-file load: header, every entry checksum, trailer, and
/// the name-vs-header LSN agreement. Returns false without touching
/// \p Out's entries on any damage.
bool loadCheckpoint(const std::string &Path, uint64_t ExpectLsn,
                    CheckpointImage &Out);

/// Loads the newest checkpoint in \p Dir that validates, skipping (and
/// counting) corrupt newer ones. Out.Lsn == 0 when nothing validates.
LoadResult loadNewestValid(const std::string &Dir, CheckpointImage &Out);

/// Deletes checkpoint files with barrier < \p KeepLsn.
void removeCheckpointsBelow(const std::string &Dir, uint64_t KeepLsn);

} // namespace ckpt

/// Aggregate checkpointer counters (monotone since construction).
struct CheckpointStats {
  uint64_t Attempts = 0;      ///< runOnce calls that found new history.
  uint64_t Written = 0;       ///< Checkpoints published (renamed in).
  uint64_t Failures = 0;      ///< Attempts lost to I/O (incl. injected).
  uint64_t LastLsn = 0;       ///< Barrier of the newest published one.
  uint64_t LastEntries = 0;   ///< Image size of the newest published one.
  uint64_t WalTruncatedBytes = 0; ///< Total log bytes rotated out.
  double TotalMillis = 0;     ///< Wall time spent inside runOnce.
};

/// Background checkpoint writer. Lifecycle: construct over a recovered
/// store and a *started* Wal, start(), stop() before Wal::stop().
class Checkpointer {
public:
  struct Config {
    /// Take a checkpoint after this many new WAL record appends (the
    /// kv_service --checkpoint-interval flag). 0 disables the trigger —
    /// only explicit runOnce() calls checkpoint.
    uint64_t IntervalOps = 0;
    /// Trigger-poll cadence of the background thread.
    uint32_t PollMs = 5;
  };

  Checkpointer(Store &S, Wal &W, const Config &C);
  ~Checkpointer(); // stop()s if still running.

  Checkpointer(const Checkpointer &) = delete;
  Checkpointer &operator=(const Checkpointer &) = delete;

  void start();
  void stop();

  /// One synchronous checkpoint cycle: scan, publish, retire history.
  /// Returns false on a failed publication (counted in stats; the
  /// previous checkpoint stays authoritative). A cycle that finds no
  /// new history since the last barrier is a successful no-op.
  bool runOnce(std::string *Err = nullptr);

  CheckpointStats stats() const;

private:
  void loop();

  Store &S;
  Wal &W;
  Config Cfg;

  std::thread Worker;
  std::mutex Mu;
  std::condition_variable Cv;
  bool Stopping = false;
  bool Running = false;

  /// Barriers of the two retained generations (0 = none yet). Seeded
  /// from the directory at construction so a restarted process keeps
  /// rotating instead of re-writing from scratch.
  uint64_t NewestLsn = 0;
  uint64_t PrevLsn = 0;
  /// Wal record count at the last trigger, for the interval test.
  uint64_t LastTriggerRecords = 0;

  std::atomic<uint64_t> StatAttempts{0};
  std::atomic<uint64_t> StatWritten{0};
  std::atomic<uint64_t> StatFailures{0};
  std::atomic<uint64_t> StatLastLsn{0};
  std::atomic<uint64_t> StatLastEntries{0};
  std::atomic<uint64_t> StatTruncatedBytes{0};
  std::atomic<uint64_t> StatTotalMicros{0};
};

} // namespace kv
} // namespace satm

#endif // SATM_KV_CHECKPOINT_H
