//===- kv/Wal.cpp - SATM-KV durability plane implementation --------------===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "kv/Wal.h"

#include "kv/Checkpoint.h"
#include "kv/Store.h"
#include "stm/Quiesce.h"
#include "support/Backoff.h"
#include "support/FaultInjector.h"
#include "support/Stopwatch.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <unistd.h>

using namespace satm;
using namespace satm::kv;

const char *satm::kv::durabilityModeName(DurabilityMode M) {
  switch (M) {
  case DurabilityMode::Off:
    return "off";
  case DurabilityMode::Async:
    return "async";
  case DurabilityMode::Sync:
    return "sync";
  }
  return "?";
}

bool satm::kv::parseDurabilityMode(const char *S, DurabilityMode &Out) {
  if (!S)
    return false;
  if (std::strcmp(S, "off") == 0)
    Out = DurabilityMode::Off;
  else if (std::strcmp(S, "async") == 0)
    Out = DurabilityMode::Async;
  else if (std::strcmp(S, "sync") == 0)
    Out = DurabilityMode::Sync;
  else
    return false;
  return true;
}

uint64_t WalRecord::checksum() const {
  // SplitMix64-style finalize over a running combine, seeded so the
  // all-zero record (a zero-filled torn tail) never validates.
  uint64_t H = 0x5a71db14b816f5c3ull;
  const uint64_t W[4] = {Lsn, Meta, Key, Val};
  for (uint64_t X : W) {
    H ^= X + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
    H = (H ^ (H >> 30)) * 0xbf58476d1ce4e5b9ull;
  }
  return H ^ (H >> 31);
}

namespace {

/// Per-thread LSN of the last append, for sync-mode acks.
thread_local uint64_t TlsLastAppendedLsn = 0;

void ioFatal(const char *What, const std::string &Path) {
  std::fprintf(stderr, "satm: wal %s failed for '%s': %s\n", What,
               Path.c_str(), std::strerror(errno));
  std::abort();
}

} // namespace

uint64_t Wal::lastAppendedLsn() { return TlsLastAppendedLsn; }

std::string Wal::shardFile(uint32_t Shard) const {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "/shard-%04u.wal", Shard);
  return Cfg.Dir + Buf;
}

Wal::Wal(const Config &C) : Cfg(C) {
  assert((Cfg.RingSlots & (Cfg.RingSlots - 1)) == 0 && "ring is power of two");
  if (Cfg.DrainThreads == 0)
    Cfg.DrainThreads = 1;
  std::error_code Ec;
  std::filesystem::create_directories(Cfg.Dir, Ec); // Pre-existing is fine.
  Rings = std::vector<Ring>(Cfg.Shards);
  for (auto &R : Rings)
    R.Buf = std::make_unique<WalRecord[]>(Cfg.RingSlots);
  Fds.assign(Cfg.Shards, -1);
  FileLocks.resize(Cfg.Shards);
  for (auto &M : FileLocks)
    M = std::make_unique<std::mutex>();
  ThreadCut.assign(Cfg.DrainThreads, 0);
}

Wal::~Wal() {
  stop();
  for (int Fd : Fds)
    if (Fd >= 0)
      ::close(Fd);
}

void Wal::start() {
  assert(!Started && "wal already started");
  for (uint32_t S = 0; S < Cfg.Shards; ++S) {
    if (Fds[S] >= 0)
      continue;
    Fds[S] = ::open(shardFile(S).c_str(), O_CREAT | O_WRONLY | O_APPEND,
                    0644);
    if (Fds[S] < 0)
      ioFatal("open", shardFile(S));
  }
  // Persist the directory entries once, so a crash right after start
  // cannot lose the (empty) shard files themselves.
  int DirFd = ::open(Cfg.Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (DirFd >= 0) {
    ::fsync(DirFd);
    ::close(DirFd);
  }
  // A restart of the same instance continues past everything it already
  // published (the rings are empty here: stop() drained them).
  LastLsn = std::max(LastLsn, PublishedLsn.load(std::memory_order_relaxed));
  // Derive the LSN base from the *live* ticket counter, not from an
  // assumed fresh-process value: recovery replay under SnapshotEnabled,
  // pre-attach prepopulation, and earlier runs in this process all
  // consume publish tickets, and the merge's hole rule (recover(), phase
  // 2) needs the first logged commit to land at exactly LastLsn + 1.
  // Unsigned wrap-around in the subtraction is fine — append computes
  // BaseLsn + Ticket, which unwraps it.
  BaseLsn = LastLsn - stm::Quiescence::lastPublishTicket();
  PublishedLsn.store(LastLsn, std::memory_order_relaxed);
  DurableLsn.store(LastLsn, std::memory_order_relaxed);
  ThreadCut.assign(Cfg.DrainThreads, LastLsn);
  Stopping.store(false, std::memory_order_relaxed);
  Started = true;
  for (unsigned T = 0; T < Cfg.DrainThreads; ++T)
    Drainers.emplace_back([this, T] { drainLoop(T); });
}

void Wal::stop() {
  if (!Started)
    return;
  {
    std::lock_guard<std::mutex> Lock(WaitMutex);
    Stopping.store(true, std::memory_order_release);
  }
  DrainCv.notify_all();
  for (auto &T : Drainers)
    T.join();
  Drainers.clear();
  Started = false;
}

//===----------------------------------------------------------------------===
// Commit side (publish window).
//===----------------------------------------------------------------------===

void Wal::append(uint32_t Shard, WalOp Op, Word Key, Word Val,
                 uint64_t Ticket, uint32_t Index, uint32_t Count) {
  assert(Started && "append on a stopped wal");
  if (faultPoint(FaultSite::LogAppend))
    faultSpin(FaultInjector::arg(FaultSite::LogAppend));
  const uint64_t Lsn = BaseLsn + Ticket;
  if (DegradedFlag.load(std::memory_order_acquire)) {
    // Sealed log: commits keep flowing, but feeding the rings would only
    // queue records no drainer will ever make durable. Keep the LSN
    // bookkeeping honest (PublishedLsn stays monotone for a later
    // stop()/start(); the per-thread LSN still routes the committer to
    // waitDurable, which reports the loss) and count the drop.
    StatAppends.fetch_add(1, std::memory_order_relaxed);
    StatDroppedRecords.fetch_add(1, std::memory_order_relaxed);
    TlsLastAppendedLsn = Lsn;
    if (Index + 1 == Count)
      PublishedLsn.store(Lsn, std::memory_order_release);
    return;
  }
  Ring &R = Rings[Shard];
  const uint32_t Mask = Cfg.RingSlots - 1;
  uint64_t H = R.Head.load(std::memory_order_relaxed);
  // Backpressure: wait for the drainer, never overwrite. This is the one
  // blocking wait allowed in the publish window — it is on an I/O thread
  // that holds no publish ticket and no STM state, so it cannot close a
  // wait cycle through the publish order (see Wal.h).
  if (H - R.Tail.load(std::memory_order_acquire) >= Cfg.RingSlots) {
    StatRingStalls.fetch_add(1, std::memory_order_relaxed);
    DrainCv.notify_one();
    Backoff B;
    while (H - R.Tail.load(std::memory_order_acquire) >= Cfg.RingSlots)
      B.pause();
  }
  WalRecord &Rec = R.Buf[H & Mask];
  Rec.Lsn = Lsn;
  Rec.Meta = WalRecord::packMeta(Op, Index, Count);
  Rec.Key = Key;
  Rec.Val = Val;
  Rec.Check = Rec.checksum();
  R.Head.store(H + 1, std::memory_order_release);
  StatAppends.fetch_add(1, std::memory_order_relaxed);
  TlsLastAppendedLsn = Lsn;
  // The group becomes drainable only once its last record is in a ring:
  // a drain cut at this LSN must never fsync-ack a half-appended
  // transaction (waitDurable would then ack a write recovery drops).
  if (Index + 1 == Count)
    PublishedLsn.store(Lsn, std::memory_order_release);
}

void Wal::publishHook(void *Ctx, uint64_t Ticket, uint32_t Index,
                      uint32_t Count, Word A, Word B, Word C) {
  static_cast<Wal *>(Ctx)->append(uint32_t(A & 0xffffffffu),
                                  WalOp(uint32_t(A >> 32)), B, C, Ticket,
                                  Index, Count);
}

//===----------------------------------------------------------------------===
// Drain side (group commit).
//===----------------------------------------------------------------------===

void Wal::drainLoop(unsigned ThreadIndex) {
  std::vector<uint8_t> Scratch;
  std::vector<uint32_t> DirtyShards;
  for (;;) {
    {
      std::unique_lock<std::mutex> Lock(WaitMutex);
      DrainCv.wait_for(Lock, std::chrono::microseconds(Cfg.FlushIntervalUs),
                       [&] {
                         return Stopping.load(std::memory_order_acquire) ||
                                SyncWaitersPending > 0;
                       });
    }
    bool Last = Stopping.load(std::memory_order_acquire);
    drainCycle(ThreadIndex, Scratch, DirtyShards);
    if (Last)
      return; // Final cycle ran after Stopping was visible: rings empty.
  }
}

void Wal::drainCycle(unsigned ThreadIndex, std::vector<uint8_t> &Scratch,
                     std::vector<uint32_t> &DirtyShards) {
  // The cut is read *before* draining: every record with LSN <= Cut was
  // fully ring-published at that moment (PublishedLsn advances only after
  // a transaction's last record, and the publish window serializes
  // groups), so emptying the rings below captures all of them.
  const uint64_t Cut = PublishedLsn.load(std::memory_order_acquire);
  bool Degraded = DegradedFlag.load(std::memory_order_acquire);
  DirtyShards.clear();
  for (uint32_t S = ThreadIndex; S < Cfg.Shards; S += Cfg.DrainThreads) {
    Ring &R = Rings[S];
    uint64_t T = R.Tail.load(std::memory_order_relaxed);
    const uint64_t H = R.Head.load(std::memory_order_acquire);
    if (T == H)
      continue;
    Scratch.clear();
    const uint32_t Mask = Cfg.RingSlots - 1;
    for (; T != H; ++T) {
      const WalRecord &Rec = R.Buf[T & Mask];
      const uint8_t *P = reinterpret_cast<const uint8_t *>(&Rec);
      Scratch.insert(Scratch.end(), P, P + sizeof(WalRecord));
    }
    // Degraded: keep consuming (producers must never stall on a ring no
    // one will drain) but discard — the log is sealed and these records
    // will never be fsync-acked.
    if (Degraded) {
      R.Tail.store(T, std::memory_order_release);
      StatDroppedRecords.fetch_add(Scratch.size() / sizeof(WalRecord),
                                   std::memory_order_relaxed);
      continue;
    }
    // Injected disk-full: the shard write fails as if write(2) returned
    // ENOSPC. Real write errors take the same path — degrade, not abort.
    if (faultPoint(FaultSite::LogEnospc)) {
      errno = ENOSPC;
      enterDegraded("write", shardFile(S));
      Degraded = true;
      R.Tail.store(T, std::memory_order_release);
      StatDroppedRecords.fetch_add(Scratch.size() / sizeof(WalRecord),
                                   std::memory_order_relaxed);
      continue;
    }
    size_t Off = 0;
    bool WriteOk = true;
    {
      std::lock_guard<std::mutex> FLock(*FileLocks[S]);
      while (Off < Scratch.size()) {
        ssize_t N =
            ::write(Fds[S], Scratch.data() + Off, Scratch.size() - Off);
        if (N < 0) {
          if (errno == EINTR)
            continue;
          WriteOk = false;
          break;
        }
        Off += size_t(N);
      }
    }
    R.Tail.store(T, std::memory_order_release);
    if (!WriteOk) {
      enterDegraded("write", shardFile(S));
      Degraded = true;
      StatDroppedRecords.fetch_add(
          (Scratch.size() - Off + sizeof(WalRecord) - 1) / sizeof(WalRecord),
          std::memory_order_relaxed);
      continue;
    }
    StatRecordsWritten.fetch_add(Scratch.size() / sizeof(WalRecord),
                                 std::memory_order_relaxed);
    StatBytesWritten.fetch_add(Scratch.size(), std::memory_order_relaxed);
    DirtyShards.push_back(S);
  }
  if (!DirtyShards.empty() && !Degraded) {
    // Group commit: one fsync per dirty shard file covers every record
    // that accumulated since the previous cycle; untouched files are
    // skipped (an fsync can cost a device cache flush even when clean).
    if (faultPoint(FaultSite::LogFsync))
      faultSpin(FaultInjector::arg(FaultSite::LogFsync));
    for (uint32_t S : DirtyShards) {
      std::lock_guard<std::mutex> FLock(*FileLocks[S]);
      if (::fsync(Fds[S]) < 0) {
        enterDegraded("fsync", shardFile(S));
        Degraded = true;
        break;
      }
    }
    if (!Degraded)
      StatFsyncBatches.fetch_add(1, std::memory_order_relaxed);
  }
  // Advance durability to the minimum cut over all drain threads — even
  // on an idle cycle (an empty ring means this thread's shards were
  // already durable up to Cut). Never while degraded: a failed write or
  // fsync anywhere this cycle means Cut was not honestly reached, and
  // DurableLsn stays frozen at the last cut that was.
  if (!Degraded) {
    std::lock_guard<std::mutex> Lock(WaitMutex);
    ThreadCut[ThreadIndex] = std::max(ThreadCut[ThreadIndex], Cut);
    uint64_t Min = ThreadCut[0];
    for (uint64_t C : ThreadCut)
      Min = std::min(Min, C);
    if (Min > DurableLsn.load(std::memory_order_relaxed))
      DurableLsn.store(Min, std::memory_order_release);
  }
  DurableCv.notify_all();
}

void Wal::enterDegraded(const char *What, const std::string &Path) {
  bool Expected = false;
  if (DegradedFlag.compare_exchange_strong(Expected, true,
                                           std::memory_order_acq_rel)) {
    std::fprintf(stderr,
                 "satm: wal %s failed for '%s': %s — sealing the log "
                 "(degraded mode, durable cut frozen at LSN %llu)\n",
                 What, Path.c_str(), std::strerror(errno),
                 (unsigned long long)DurableLsn.load(
                     std::memory_order_acquire));
  }
  // Every parked sync waiter must observe the seal and report
  // DurabilityLost instead of blocking on an LSN that will never come.
  DurableCv.notify_all();
}

DurableWait Wal::waitDurable(uint64_t Lsn) {
  return waitDurable(Lsn, std::chrono::steady_clock::time_point::max());
}

DurableWait Wal::waitDurable(uint64_t Lsn,
                             std::chrono::steady_clock::time_point Deadline) {
  if (DurableLsn.load(std::memory_order_acquire) >= Lsn)
    return DurableWait::Ok;
  if (DegradedFlag.load(std::memory_order_acquire))
    return DurableWait::DurabilityLost;
  std::unique_lock<std::mutex> Lock(WaitMutex);
  ++SyncWaitersPending;
  DrainCv.notify_all(); // Kick an immediate group-commit cycle.
  auto Reached = [&] {
    return DurableLsn.load(std::memory_order_acquire) >= Lsn ||
           DegradedFlag.load(std::memory_order_acquire);
  };
  if (Deadline == std::chrono::steady_clock::time_point::max())
    DurableCv.wait(Lock, Reached);
  else
    DurableCv.wait_until(Lock, Deadline, Reached);
  --SyncWaitersPending;
  // Durability beats the other verdicts: even a degraded log honestly
  // holds every record at or below the frozen cut.
  if (DurableLsn.load(std::memory_order_acquire) >= Lsn)
    return DurableWait::Ok;
  if (DegradedFlag.load(std::memory_order_acquire))
    return DurableWait::DurabilityLost;
  return DurableWait::DeadlineExceeded;
}

WalStats Wal::stats() const {
  WalStats S;
  S.RecordsAppended = StatAppends.load(std::memory_order_relaxed);
  S.RingStalls = StatRingStalls.load(std::memory_order_relaxed);
  S.FsyncBatches = StatFsyncBatches.load(std::memory_order_relaxed);
  S.RecordsWritten = StatRecordsWritten.load(std::memory_order_relaxed);
  S.BytesWritten = StatBytesWritten.load(std::memory_order_relaxed);
  S.DroppedRecords = StatDroppedRecords.load(std::memory_order_relaxed);
  S.Degraded = DegradedFlag.load(std::memory_order_acquire);
  return S;
}

//===----------------------------------------------------------------------===
// Compaction (checkpoint barrier rotation).
//===----------------------------------------------------------------------===

uint64_t Wal::truncateBelow(uint64_t Barrier) {
  assert(Started && "truncateBelow serves the live checkpointer");
  // Only durable prefixes may be dropped: a record still in a ring (or
  // never fsynced at all) below the barrier would otherwise vanish from
  // both the log and the next recovery. A degraded log skips rotation
  // entirely — its files are frozen evidence.
  if (DegradedFlag.load(std::memory_order_acquire) ||
      DurableLsn.load(std::memory_order_acquire) < Barrier)
    return 0;
  uint64_t Removed = 0;
  bool Rotated = false;
  for (uint32_t S = 0; S < Cfg.Shards; ++S) {
    std::lock_guard<std::mutex> FLock(*FileLocks[S]);
    const std::string Path = shardFile(S);
    // Read the current shard file and keep only the beyond-barrier
    // suffix. The file is record-aligned while the log is healthy (only
    // the drainer writes it, whole records at a time).
    std::vector<uint8_t> Keep;
    uint64_t Dropped = 0;
    {
      FILE *F = std::fopen(Path.c_str(), "rb");
      if (!F)
        continue;
      WalRecord Rec;
      while (std::fread(&Rec, 1, sizeof(Rec), F) == sizeof(Rec)) {
        if (Rec.Lsn > Barrier) {
          const uint8_t *P = reinterpret_cast<const uint8_t *>(&Rec);
          Keep.insert(Keep.end(), P, P + sizeof(Rec));
        } else {
          Dropped += sizeof(WalRecord);
        }
      }
      std::fclose(F);
    }
    if (Dropped == 0)
      continue;
    // Write-temp → fsync → rename-over → reopen the append fd on the new
    // inode. Any failure abandons this shard's rotation (the old file
    // and fd stay authoritative) — except a post-rename reopen failure,
    // which would silently route appends to a dead inode and so seals
    // the log instead.
    const std::string Tmp = Path + ".tmp";
    int TFd = ::open(Tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (TFd < 0)
      continue;
    bool Ok = true;
    size_t Off = 0;
    while (Off < Keep.size()) {
      ssize_t N = ::write(TFd, Keep.data() + Off, Keep.size() - Off);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        Ok = false;
        break;
      }
      Off += size_t(N);
    }
    if (Ok && ::fsync(TFd) < 0)
      Ok = false;
    ::close(TFd);
    if (!Ok || ::rename(Tmp.c_str(), Path.c_str()) < 0) {
      ::unlink(Tmp.c_str());
      continue;
    }
    int NFd = ::open(Path.c_str(), O_WRONLY | O_APPEND);
    if (NFd < 0) {
      enterDegraded("reopen", Path);
      return Removed;
    }
    ::close(Fds[S]);
    Fds[S] = NFd;
    Removed += Dropped;
    Rotated = true;
  }
  if (Rotated) {
    int DirFd = ::open(Cfg.Dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (DirFd >= 0) {
      ::fsync(DirFd);
      ::close(DirFd);
    }
  }
  return Removed;
}

//===----------------------------------------------------------------------===
// Recovery.
//===----------------------------------------------------------------------===

namespace {

/// One shard's validated scan: the longest file prefix of records that
/// checksum correctly and are (Lsn, Index)-monotone. ValidBytes is where
/// that prefix ends; everything after is torn or corrupt.
struct ShardScan {
  std::vector<WalRecord> Recs;
  uint64_t ValidBytes = 0;
  uint64_t FileBytes = 0;
  bool Torn = false;
  bool ReplayFaultStop = false;
};

void scanShard(const std::string &Path, ShardScan &Out) {
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return; // No file: empty log.
  WalRecord Rec;
  for (;;) {
    size_t N = std::fread(&Rec, 1, sizeof(Rec), F);
    Out.FileBytes += N;
    if (N < sizeof(Rec)) {
      Out.Torn |= N != 0; // Short tail: a record cut mid-write.
      break;
    }
    if (Rec.Check != Rec.checksum()) {
      Out.Torn = true; // Bit-flip or zero-fill: stop, never replay.
      break;
    }
    if (!Out.Recs.empty()) {
      const WalRecord &Prev = Out.Recs.back();
      // Per-shard order is strict: LSN non-decreasing, and within one
      // LSN (a multi-record transaction) the index strictly increases.
      // A duplicated tail repeats (Lsn, Index) and fails here.
      if (Rec.Lsn < Prev.Lsn ||
          (Rec.Lsn == Prev.Lsn && Rec.index() <= Prev.index())) {
        Out.Torn = true;
        break;
      }
    }
    // Injected recovery fault: abandon the rest of this shard's log as
    // if the scan hit a torn record (kill mode turns this into a crash
    // during recovery — double-crash testing).
    if (faultPoint(FaultSite::RecoveryReplay)) {
      faultSpin(FaultInjector::arg(FaultSite::RecoveryReplay));
      Out.ReplayFaultStop = true;
      break;
    }
    Out.Recs.push_back(Rec);
    Out.ValidBytes += sizeof(Rec);
  }
  // Anything read past ValidBytes (including a trailing partial record
  // fread consumed) does not count as file content to keep.
  std::fseek(F, 0, SEEK_END);
  Out.FileBytes = uint64_t(std::ftell(F));
  std::fclose(F);
}

} // namespace

RecoveryStats Wal::recover(Store &S) {
  assert(!Started && "recover must run before start()");
  assert(S.shards() == Cfg.Shards && "wal/store shard mismatch");
  Stopwatch Timer;
  RecoveryStats Out;
  // Phase 0: load the newest *valid* checkpoint in the directory and
  // apply its image — the bounded-recovery baseline. A corrupt newest
  // checkpoint falls back to the older retained one (whose WAL suffix
  // the two-generation retention rule kept on disk), and to empty when
  // none validates; the WAL merge below then simply replays from
  // further back. Erased keys arrive as Tombstone entries and must
  // override whatever baseline the caller prepopulated.
  ckpt::CheckpointImage Img;
  ckpt::LoadResult Lr = ckpt::loadNewestValid(Cfg.Dir, Img);
  Out.CheckpointLsn = Img.Lsn;
  Out.CheckpointsDiscarded = Lr.Discarded;
  if (Lr.Loaded) {
    for (const auto &E : Img.Entries) {
      if (E.second == Store::Tombstone) {
        S.erase(E.first); // Absent is fine: erased before it ever
                          // reached this baseline.
      } else if (!S.insert(E.first, E.second)) {
        ++Out.ApplyFailures;
      }
    }
    Out.CheckpointEntries = Img.Entries.size();
    Out.CutLsn = Img.Lsn; // An empty WAL suffix still recovers to here.
  }
  std::vector<ShardScan> Scans(Cfg.Shards);
  // Phase 1: shard-parallel validated scans. One thread per shard would
  // oversubscribe a small box for no gain; cap at hardware concurrency.
  {
    unsigned NumWorkers = std::max(1u, std::min<unsigned>(
        std::thread::hardware_concurrency(), Cfg.Shards));
    std::atomic<uint32_t> Next{0};
    std::vector<std::thread> Workers;
    for (unsigned W = 0; W < NumWorkers; ++W)
      Workers.emplace_back([&] {
        for (;;) {
          uint32_t Shard = Next.fetch_add(1, std::memory_order_relaxed);
          if (Shard >= Cfg.Shards)
            return;
          scanShard(shardFile(Shard), Scans[Shard]);
        }
      });
    for (auto &W : Workers)
      W.join();
  }
  for (const ShardScan &Sc : Scans) {
    Out.RecordsScanned += Sc.Recs.size();
    if (Sc.Torn)
      ++Out.TornRecords;
  }
  // Phase 2: cross-shard merge by LSN. A transaction's group is complete
  // iff its record count equals the span every record carries; the first
  // incomplete group cuts the global replay — records above it are a
  // suffix the crash made non-atomic, and replaying any of them would
  // break prefix-of-commit-order semantics.
  //
  // Incompleteness alone is not enough, though: a torn shard tail (or a
  // shard file that is simply behind, the drainer having died before
  // reaching it) can swallow transactions that lived *wholly* in that
  // shard. Their LSNs then vanish from the merge entirely — no
  // incomplete group, just a hole — while later complete groups from
  // other shards would happily replay past them, silently dropping a
  // middle transaction. Logged LSNs are contiguous from 2 over the log's
  // whole history (every logging commit takes the next publish ticket,
  // start() folds the live ticket counter into BaseLsn so a restart
  // continues at cut + 1, and truncation only ever drops suffixes), so a
  // discontinuity IS a lost group: cut there. PrevLsn starts at 1 so the
  // rule also covers the log's *first* commit — if LSN 2 itself was
  // swallowed, nothing is a prefix and the replay cuts to empty.
  uint64_t CutLsn = UINT64_MAX;
  {
    std::vector<size_t> Pos(Cfg.Shards, 0);
    // The hole rule anchors at the checkpoint barrier when one loaded:
    // records at or below it are already covered by the checkpoint image
    // and may legitimately linger on disk (a crash between checkpoint
    // publication and WAL rotation) — skip them, then demand contiguity
    // from barrier + 1. Without a checkpoint the anchor stays at 1, the
    // log's fixed origin.
    uint64_t PrevLsn = std::max<uint64_t>(Img.Lsn, 1);
    for (uint32_t Sd = 0; Sd < Cfg.Shards; ++Sd) {
      auto &Recs = Scans[Sd].Recs;
      size_t &P = Pos[Sd];
      while (P < Recs.size() && Recs[P].Lsn <= Img.Lsn)
        ++P;
    }
    for (;;) {
      uint64_t Lsn = UINT64_MAX;
      for (uint32_t Sd = 0; Sd < Cfg.Shards; ++Sd)
        if (Pos[Sd] < Scans[Sd].Recs.size())
          Lsn = std::min(Lsn, Scans[Sd].Recs[Pos[Sd]].Lsn);
      if (Lsn == UINT64_MAX)
        break; // All records grouped.
      if (Lsn != PrevLsn + 1) {
        CutLsn = PrevLsn; // Hole: a wholly-lost group hides in the gap.
        break;
      }
      PrevLsn = Lsn;
      uint32_t Count = 0, Span = 0;
      bool Coherent = true;
      for (uint32_t Sd = 0; Sd < Cfg.Shards; ++Sd) {
        auto &Recs = Scans[Sd].Recs;
        size_t &P = Pos[Sd];
        while (P < Recs.size() && Recs[P].Lsn == Lsn) {
          if (Span == 0)
            Span = Recs[P].span();
          else if (Recs[P].span() != Span)
            Coherent = false;
          ++Count;
          ++P;
        }
      }
      if (!Coherent || Count != Span) {
        CutLsn = Lsn - 1; // First incomplete group: cut before it.
        break;
      }
      ++Out.TxnsReplayed;
      Out.CutLsn = Lsn;
    }
  }
  if (CutLsn != UINT64_MAX)
    Out.CutLsn = std::min(Out.CutLsn, CutLsn);
  // Phase 3: shard-parallel replay of the prefix. Records of one shard
  // are already in commit order; cross-shard interleaving within the
  // prefix is free (transactions' shard-disjoint records commute, and
  // same-key records always share a shard).
  {
    std::atomic<uint64_t> Replayed{0}, Failures{0};
    std::atomic<uint32_t> Next{0};
    unsigned NumWorkers = std::max(1u, std::min<unsigned>(
        std::thread::hardware_concurrency(), Cfg.Shards));
    std::vector<std::thread> Workers;
    const uint64_t Cut = Out.CutLsn;
    for (unsigned W = 0; W < NumWorkers; ++W)
      Workers.emplace_back([&] {
        for (;;) {
          uint32_t Shard = Next.fetch_add(1, std::memory_order_relaxed);
          if (Shard >= Cfg.Shards)
            return;
          for (const WalRecord &Rec : Scans[Shard].Recs) {
            if (Rec.Lsn <= Img.Lsn)
              continue; // Covered by the checkpoint image already.
            if (Rec.Lsn > Cut)
              break;
            bool Ok = Rec.op() == WalOp::Put
                          ? S.insert(Rec.Key, Rec.Val)
                          : S.erase(Rec.Key);
            if (!Ok)
              Failures.fetch_add(1, std::memory_order_relaxed);
            Replayed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    for (auto &W : Workers)
      W.join();
    Out.RecordsReplayed = Replayed.load(std::memory_order_relaxed);
    Out.ApplyFailures = Failures.load(std::memory_order_relaxed);
  }
  // Phase 4: truncate every shard file at its replayed prefix — torn
  // tails and beyond-cut suffixes alike — so the dropped records cannot
  // resurface in a later recovery (they would re-cut the log there and
  // orphan everything appended afterwards). The repair must be durable
  // before any new append can be acked: resize_file alone only reaches
  // the page cache, and after power loss a resurrected stale suffix
  // would collide with the reused LSNs of the next generation and make
  // an acked new-generation group look torn. So fsync each repaired
  // file, and the directory, before returning.
  bool Repaired = false;
  for (uint32_t Sd = 0; Sd < Cfg.Shards; ++Sd) {
    const ShardScan &Sc = Scans[Sd];
    uint64_t Keep = 0;
    for (const WalRecord &Rec : Sc.Recs) {
      if (Rec.Lsn > Out.CutLsn)
        break;
      Keep += sizeof(WalRecord);
    }
    if (Keep < Sc.FileBytes) {
      Out.TruncatedBytes += Sc.FileBytes - Keep;
      std::error_code Ec;
      std::filesystem::resize_file(shardFile(Sd), Keep, Ec);
      // A missing file truncates to nothing by definition (and cannot
      // be opened below; nothing to make durable either way).
      int Fd = ::open(shardFile(Sd).c_str(), O_WRONLY);
      if (Fd >= 0) {
        if (::fsync(Fd) < 0)
          ioFatal("fsync", shardFile(Sd));
        ::close(Fd);
        Repaired = true;
      }
    }
  }
  if (Repaired) {
    int DirFd = ::open(Cfg.Dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (DirFd >= 0) {
      ::fsync(DirFd);
      ::close(DirFd);
    }
  }
  // Record the durable history's high-water mark; start() folds the live
  // publish-ticket counter into BaseLsn so the next generation's first
  // record lands exactly at cut + 1 — even though the replay transactions
  // above consumed tickets themselves under Config::SnapshotEnabled. An
  // empty or fully-cut log continues at LSN 2, the fixed origin the
  // merge's hole rule anchors on.
  LastLsn = std::max<uint64_t>(Out.CutLsn, 1);
  // Reclamation identities must hold on the rebuilt store: every record
  // parked by a replayed erase is accounted for, nothing leaked.
  Store::ReclaimStats Rs = S.reclaimStats();
  Out.ReclaimIdentityOk =
      Rs.PoolSize == Rs.Retired - Rs.Recycled && Rs.Retired >= Rs.Recycled;
  Out.Millis = Timer.millis();
  return Out;
}
