//===- kv/Store.h - SATM-KV: sharded STM-backed key-value store -*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SATM-KV: an in-memory sharded key-value store whose every piece of
/// shared state is an STM-managed object (rt::Heap), accessed through two
/// planes that the paper proves can coexist on one heap:
///
///  - the *transactional* plane: multi-key operations (snapshot multi-get,
///    read-modify-write batches, CAS, insert/erase) run as eager atomic
///    transactions (stm::Txn);
///  - the *non-transactional* plane: single-key GET and PUT-to-existing-key
///    run bare through the strong-atomicity isolation barriers
///    (stm::ntRead / stm::ntWrite) — no descriptor, no read set, no commit.
///
/// Layout (KVell-style flat per-shard index, but on managed objects):
/// each shard owns three objects — a Keys int-array (open addressing,
/// linear probing, slot holds key+1, 0 = empty), a Vals ref-array of
/// single-slot value objects, and a Meta counter object. Value objects are
/// allocated per insert (DEA-private until the transactional ref store
/// publishes them, §4). The *index* never shrinks — erase leaves the Keys
/// entry behind so the non-transactional GET's probe walks only
/// monotonically-growing state — but the value record is unlinked (Vals
/// slot nulled) and parked in a per-shard retire pool. A later insert
/// recycles a parked record once the Quiescence epoch has advanced past
/// its retirement and no snapshot pin predates it, so sustained
/// insert/erase churn runs in bounded memory instead of leaking a
/// tombstoned record per erase.
///
/// Why the two planes compose (the strong-atomicity argument, spelled out
/// in DESIGN.md §8): index mutations happen only inside transactions, which
/// hold the shard's Keys/Vals records Exclusive from first write to
/// commit/rollback; a non-transactional probe therefore either waits out
/// the mutation or sees none of it. Single-key GET/PUT touch exactly one
/// data slot of one value object through one barrier, which makes each of
/// them individually atomic and hence linearizable against committing
/// transactions.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_KV_STORE_H
#define SATM_KV_STORE_H

#include "rt/Heap.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace satm {
namespace stm {
class Txn;
}
namespace kv {

class Wal;
enum class WalOp : uint8_t;

using stm::Word;

/// Typed outcome of a budgeted transactional operation. The first four are
/// what the bool APIs already distinguished; the last two are overload
/// control: the operation gave up *without effects* because its retry
/// budget ran out or its deadline passed. Under contention an unbounded
/// retry loop converts overload into unbounded latency — a budgeted caller
/// converts it into an explicit shed instead.
enum class OpStatus : uint8_t {
  Ok,               ///< Committed with the requested effect.
  NotFound,         ///< Committed; the key was absent (or erased).
  Mismatch,         ///< Committed; CAS expectation failed.
  Full,             ///< Committed; the shard's probe sequence is exhausted.
  Overloaded,       ///< Aborted: attempt budget exhausted. No effects.
  DeadlineExceeded, ///< Aborted: deadline passed. No effects.
  DurabilityLost,   ///< Committed in memory, but the WAL is degraded and
                    ///< the sync-mode durability promise cannot be kept
                    ///< (kv/Wal.h degraded mode). Never produced by the
                    ///< store itself — the sync ack layer rewrites Ok
                    ///< into it when waitDurable reports the seal.
};

/// Display name (matches the enumerator).
const char *opStatusName(OpStatus S);

/// Retry/latency budget for one transactional operation. Default: no
/// limits (the bool APIs' behaviour). The budget is checked at the top of
/// each transaction attempt, so a transaction that started before the
/// deadline may commit slightly after it; what the budget bounds is the
/// number of *re-executions* an overloaded operation is allowed to burn.
/// A serial-irrevocable attempt (contention-manager escalation) is never
/// cut short: it cannot roll back, and it is the system's guarantee that
/// the operation finishes.
struct OpBudget {
  /// Transaction attempts allowed (0 = unlimited). 1 means try once and
  /// shed on the first conflict abort.
  uint32_t MaxAttempts = 0;
  /// Give-up point (steady clock; default-constructed = none).
  std::chrono::steady_clock::time_point Deadline{};

  static OpBudget attempts(uint32_t N) {
    OpBudget B;
    B.MaxAttempts = N;
    return B;
  }
  static OpBudget deadlineIn(std::chrono::nanoseconds D) {
    OpBudget B;
    B.Deadline = std::chrono::steady_clock::now() + D;
    return B;
  }
};

/// Store shape. Both counts are rounded up to powers of two. Capacity is
/// fixed for the store's lifetime (no rehash): like KVell's in-memory
/// indexes, SATM-KV sizes the table for the key population up front, and
/// insert() reports failure when a shard fills past its probe bound.
struct StoreConfig {
  uint32_t Shards = 16;
  uint32_t CapacityPerShard = 1024;
};

/// SplitMix64 finalizer: the store's key hash. Shard routing uses the high
/// bits and slot probing the low bits, so a shard's resident keys do not
/// cluster inside its table.
inline uint64_t hashKey(Word Key) {
  uint64_t Z = Key + 0x9e3779b97f4a7c15ull;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

class Store {
public:
  /// Absent/deleted marker. Values equal to Tombstone cannot be stored;
  /// multiGet writes it into output slots of missing keys.
  static constexpr Word Tombstone = ~Word(0);

  /// Builds the shard index objects in \p H. The structural objects are
  /// born Shared (they are reachable by every worker from the start);
  /// value objects later follow stm::config().birthState() so the DEA
  /// regimes exercise publication on insert.
  Store(rt::Heap &H, const StoreConfig &C);

  uint32_t shards() const { return uint32_t(Reps.size()); }
  uint32_t capacityPerShard() const { return Capacity; }

  uint32_t shardOf(Word Key) const {
    return uint32_t((hashKey(Key) >> 32) & (Reps.size() - 1));
  }

  /// First probe slot for \p Key in a table of \p Capacity slots.
  static uint32_t probeStart(Word Key, uint32_t Capacity) {
    return uint32_t(hashKey(Key) & (Capacity - 1));
  }

  //===--------------------------------------------------------------------===
  // Non-transactional plane (isolation barriers; single-key fast paths).
  //===--------------------------------------------------------------------===

  /// Single-key read: probes the shard index and reads the value slot, all
  /// through ntRead. Returns false if the key was never inserted or is
  /// erased.
  bool get(Word Key, Word &Out) const;

  /// Single-key overwrite of an *existing* key: one ntWrite into the value
  /// object. Returns false (and writes nothing) if the key has no index
  /// entry yet — the caller must take the transactional insert path.
  /// Writing over an erased key resurrects it, which is the natural upsert
  /// reading of PUT. \p Val must not be Tombstone.
  bool putFast(Word Key, Word Val);

  /// PUT: the fast path when the index entry exists, else a transactional
  /// insert. Returns false only if the shard is full.
  bool put(Word Key, Word Val);

  /// Owner-side single-key overwrite for the shard-affine executor
  /// (kv/Affine.h): plain loads for the probe and one release store for
  /// the value — no record CAS at all. Caller must hold the shard's
  /// AffineGate window open, which guarantees no other thread owns or
  /// acquires the shard's records for the duration (concurrent
  /// non-transactional GETs remain safe: they are per-slot atomic loads).
  /// Returns false (writing nothing) when the key is absent or erased —
  /// the caller falls through to the transactional insert, still inside
  /// its owned window.
  bool putFastOwned(Word Key, Word Val);

  //===--------------------------------------------------------------------===
  // Transactional plane (atomic multi-key operations).
  //===--------------------------------------------------------------------===

  /// Inserts or overwrites \p Key atomically. Allocates the value object
  /// inside the transaction (private until the ref store publishes it).
  /// Returns false iff the shard's probe sequence is exhausted (full).
  bool insert(Word Key, Word Val);

  /// Atomically unlinks the key's value record (the index entry stays, so
  /// probe chains never shrink) and parks the record for recycling once
  /// the system has quiesced past the erase. Returns false if the key is
  /// absent (no entry, or already erased).
  bool erase(Word Key);

  /// Atomic compare-and-swap on one key's value. Returns true iff the key
  /// was present with \p Expected and now holds \p Desired.
  bool cas(Word Key, Word Expected, Word Desired);

  /// Atomic snapshot read of \p N keys: every value in \p Out is from one
  /// serialization point. Missing keys read as Tombstone. Returns the
  /// number of keys found.
  size_t multiGet(const Word *Keys, size_t N, Word *Out) const;

  //===--------------------------------------------------------------------===
  // Snapshot plane (multi-version wait-free reads, DESIGN.md §10). Requires
  // Config::SnapshotEnabled. Reads come from the pinned stable epoch's
  // version records: no validation, no aborts, no ownership-record CASes,
  // and no retries regardless of concurrent committers. Values written only
  // through the non-transactional plane (putFast) are read in place and are
  // not ordered against the snapshot epoch — the plane's documented nt
  // caveat (stm/Snapshot.h).
  //===--------------------------------------------------------------------===

  /// Wait-free single-key snapshot read. Returns false if the key is
  /// absent or erased as of the pinned epoch.
  bool snapshotGet(Word Key, Word &Out) const;

  /// Wait-free snapshot multi-get: all \p N values from one pinned epoch.
  /// Missing keys read as Tombstone. Returns the number of keys found.
  size_t snapshotMultiGet(const Word *Keys, size_t N, Word *Out) const;

  /// Full-store snapshot scan for the checkpoint plane (kv/Checkpoint.h):
  /// one snapshot region walks every index slot of every shard and calls
  /// \p Visit(key, value) for each key live in the index as of the single
  /// pinned epoch — erased keys are reported with value Tombstone, so a
  /// checkpoint can record the erasure rather than silently resurrect a
  /// prepopulated baseline value at recovery. Returns the pinned epoch
  /// (publish ticket) the scan read at; together with Wal::lsnOfTicket
  /// that makes the scan an exact prefix of the redo log.
  uint64_t snapshotScan(const std::function<void(Word, Word)> &Visit) const;

  /// Atomic read-modify-write batch: loads all \p N values, lets \p Mutate
  /// rewrite them in place, stores them back — one transaction. Returns
  /// false (no effects) if any key is missing. \p Mutate may run several
  /// times (transaction re-execution) and must be side-effect-free.
  bool readModifyWrite(const Word *Keys, size_t N,
                       const std::function<void(Word *Vals, size_t N)> &Mutate);

  /// readModifyWrite adding \p Delta to every value (two's-complement, so
  /// negative deltas work).
  bool rmwAdd(const Word *Keys, size_t N, Word Delta);

  //===--------------------------------------------------------------------===
  // Budgeted transactional plane (overload control). Each operation is the
  // same transaction as its bool twin, but gives up with Overloaded /
  // DeadlineExceeded — atomically, with no partial effects — when \p B runs
  // out. The bool APIs are unlimited-budget wrappers over these.
  //===--------------------------------------------------------------------===

  OpStatus insert(Word Key, Word Val, const OpBudget &B);

  /// Batched upsert: one transaction inserting or overwriting all \p N
  /// keys — the amortization the network front end's per-shard request
  /// batching rides on (one commit, one publish ticket, one WAL group
  /// for N queued PUTs). On Ok, \p PerKey[i] is Ok or Full per key (a
  /// Full key is skipped; the rest still commit). Unlike single insert,
  /// the batch path never harvests the retire pools — a caller that sees
  /// Full on a tombstone-saturated shard retries that key through
  /// insert(), which recycles. Overloaded/DeadlineExceeded shed the
  /// whole batch with no effects.
  OpStatus multiPut(const Word *Keys, const Word *Vals, size_t N,
                    OpStatus *PerKey, const OpBudget &B = OpBudget{});

  OpStatus erase(Word Key, const OpBudget &B);
  OpStatus cas(Word Key, Word Expected, Word Desired, const OpBudget &B);
  /// \p Found (optional) receives the number of present keys on Ok.
  OpStatus multiGet(const Word *Keys, size_t N, Word *Out, const OpBudget &B,
                    size_t *Found = nullptr) const;
  OpStatus readModifyWrite(
      const Word *Keys, size_t N,
      const std::function<void(Word *Vals, size_t N)> &Mutate,
      const OpBudget &B);
  OpStatus rmwAdd(const Word *Keys, size_t N, Word Delta, const OpBudget &B);

  //===--------------------------------------------------------------------===
  // Introspection.
  //===--------------------------------------------------------------------===

  /// Resident index entries (keys ever inserted; erase leaves a tombstoned
  /// entry behind, so this never decreases), read per shard through ntRead.
  /// Exact only while no mutating operation is in flight.
  uint64_t size() const;

  /// The value object currently indexed under \p Key, or null (missing or
  /// erased). Test/model plumbing — production code reads through get().
  rt::Object *valueObjectFor(Word Key) const;

  /// Value-record lifecycle counters (memory-flatness tests). Live records
  /// = Allocated (records are recycled through the pools, never freed), so
  /// flat memory under churn shows up as Allocated plateauing while
  /// Retired/Recycled keep climbing.
  struct ReclaimStats {
    uint64_t Allocated; ///< Fresh value-record allocations (monotone).
    uint64_t Retired;   ///< Records parked by erase (monotone).
    uint64_t Recycled;  ///< Parked records reused by insert (monotone).
    uint64_t PoolSize;  ///< Records currently parked across all shards.
  };
  ReclaimStats reclaimStats() const;

  //===--------------------------------------------------------------------===
  // Durability plane (kv/Wal.h, DESIGN.md §12).
  //===--------------------------------------------------------------------===

  /// Attaches \p W: from here on every committing mutation registers a
  /// publish-window redo append, and the raw single-key fast paths
  /// (putFast, putFastOwned) refuse so all writes take the logged
  /// transactional path. Pass null to detach. The caller sequences this
  /// against in-flight operations (attach before workers start, detach
  /// after they join) and must have start()ed the Wal first.
  void attachWal(Wal *W) { DurableLog = W; }
  Wal *wal() const { return DurableLog; }

private:
  struct ShardRep {
    rt::Object *Keys; ///< Int array: key+1 per slot, 0 = empty.
    rt::Object *Vals; ///< Ref array: value objects, parallel to Keys.
    rt::Object *Meta; ///< Slot 0: live-key count.
  };

  /// One erased value record awaiting recycling, with the reclamation
  /// horizon recorded at the unlinking commit: the record may be reused
  /// only after the global epoch has advanced past RetireEpoch (every
  /// transaction that could still hold a stale reference has since
  /// validated or finished) and no snapshot pin is older than RetireStable
  /// (no pinned reader predates the unlink).
  struct RetiredRecord {
    rt::Object *V;
    uint32_t Slot; ///< Index slot the record was unlinked from (the
                   ///< tombstoned entry a saturated insert may recycle).
    uint64_t RetireEpoch;
    uint64_t RetireStable;
  };

  /// Per-shard retire pool. Mutex-guarded: erase commits and insert
  /// harvests are rare next to the lock-free read/write planes, and the
  /// pool is per shard, so the lock never sees cross-shard contention.
  struct ShardPool {
    std::mutex Mutex;
    std::deque<RetiredRecord> Queue;
  };

  /// Parks \p V (unlinked from index slot \p Slot) in \p Shard's pool,
  /// stamped with the current horizon.
  void pushRetired(uint32_t Shard, rt::Object *V, uint32_t Slot);

  /// Pops the oldest parked record whose horizon has passed into \p Out
  /// (record + its tombstoned slot); false if none is ripe. On an
  /// epoch-blocked head, nudges the global epoch forward once so the
  /// next harvest succeeds (epochs stall when QuiesceOnCommit is off).
  bool popRecycled(uint32_t Shard, RetiredRecord &Out);

  /// Registers a publish-window redo append for the committing operation
  /// when a Wal is attached; no-op (one predicted branch) otherwise.
  void logRedo(stm::Txn &Tx, uint32_t Shard, WalOp Op, Word Key, Word Val);

  /// Probe under transaction \p Tx (passed in so the per-key hot loops pay
  /// no thread-local descriptor lookup); returns the slot holding \p Key
  /// or -1. \p FirstFree receives the first empty slot (insert target) or
  /// -1 when the probe wrapped without finding one.
  int findSlotTxn(stm::Txn &Tx, const ShardRep &S, Word Key,
                  int *FirstFree) const;

  rt::Heap &H;
  uint32_t Capacity;
  std::vector<ShardRep> Reps;
  std::vector<std::unique_ptr<ShardPool>> Pools;
  std::atomic<uint64_t> ValueAllocated{0};
  std::atomic<uint64_t> ValueRetired{0};
  std::atomic<uint64_t> ValueRecycled{0};
  Wal *DurableLog = nullptr;
};

} // namespace kv
} // namespace satm

#endif // SATM_KV_STORE_H
