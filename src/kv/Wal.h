//===- kv/Wal.h - SATM-KV durability plane: per-shard redo log -*- C++ -*-===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SATM-KV durability plane: a per-shard append-only redo log with
/// group commit, batched fsync, and shard-parallel crash recovery
/// (ROADMAP item 1; DESIGN.md §12).
///
/// Ordering. Committing transactions publish fixed-format redo records
/// into per-shard in-memory rings *inside the snapshot publish window* —
/// between Quiescence::waitPublishTurn and completePublish — where the
/// committer is globally unique in the publish order. Log order therefore
/// equals the snapshot plane's commit order by construction: no log-side
/// CAS, no sequencer, no multi-producer races. The hand-off to the drain
/// thread is privatization-shaped (the ring slot passes from the
/// transactional world to an I/O thread); the release store that bumps
/// the ring head is the only barrier it needs, because the drainer never
/// touches STM state. The publish window's non-blocking invariant
/// (Quiesce.h) is preserved in the sense that matters for deadlock
/// freedom: an append can wait only on the drain thread (ring full), and
/// the drain thread never takes a publish ticket or any STM resource, so
/// no wait cycle through the publish order can form.
///
/// Record format: 40 bytes, five host-endian words —
///   [0] Lsn       log sequence number = BaseLsn + publish ticket; all
///                 records of one transaction share it
///   [1] Meta      op (low 8 bits) | index-within-txn (bits 8..31)
///                 | txn span (bits 32..63)
///   [2] Key
///   [3] Val       (ignored for Erase)
///   [4] Check     seeded SplitMix-style mix of words 0..3
///
/// Recovery replays the *maximal durable prefix of the commit order*: a
/// per-shard scan validates checksums and (Lsn, Index) monotonicity and
/// truncates the first torn or corrupt record (never replaying it); a
/// cross-shard merge then cuts the global replay at the first LSN whose
/// transaction group is incomplete (records ≠ span — a crash between
/// per-shard file writes) *or* absent entirely (an LSN hole: a torn
/// shard file can swallow whole transactions that logged only there, and
/// logged LSNs are contiguous from 2 by construction — every logging
/// commit takes the next publish ticket, and start() derives BaseLsn
/// from the live ticket counter so the first logged record continues the
/// on-disk history at exactly its cut + 1, no matter how many tickets
/// recovery replay or pre-attach traffic consumed). The merge therefore
/// also treats a missing *first* LSN (always 2) as a hole. The
/// beyond-cut suffix is truncated from every shard file — and the
/// repaired files and directory fsynced — so a later run cannot
/// resurrect it even across power loss.
///
/// Checkpoints (kv/Checkpoint.h; DESIGN.md §14) bound both halves of
/// that story. recover() first loads the newest *valid* checkpoint in
/// the directory (falling back to the previous one, then to empty, on
/// corruption) and replays only WAL records with LSN above the
/// checkpoint's barrier; truncateBelow() lets the checkpointer rotate
/// the already-covered log prefix out of the shard files. The merge's
/// hole rule re-anchors at the checkpoint LSN: contiguity is demanded
/// from barrier + 1, not from 2.
///
/// Degraded mode. A failed shard write or fsync (real ENOSPC/EIO, or
/// the injected log_enospc site) no longer aborts the process: the WAL
/// seals — DurableLsn freezes at the last honestly-fsynced cut, later
/// ring contents are consumed and discarded (counted in
/// WalStats::DroppedRecords), and every waitDurable call for an LSN
/// beyond the frozen cut returns DurableWait::DurabilityLost instead of
/// blocking. Reads and async traffic keep flowing; only the sync-ack
/// promise is withdrawn, and visibly so.
///
//===----------------------------------------------------------------------===//

#ifndef SATM_KV_WAL_H
#define SATM_KV_WAL_H

#include "stm/Txn.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace satm {
namespace kv {

class Store;
using stm::Word;

/// Service-level durability modes (kv_service --durability=...). The Wal
/// itself is mode-agnostic — Off means no Wal is attached at all, and
/// Sync vs Async is whether the caller waits on waitDurable before
/// acking. Kept here so the flag, the bench schema, and the tests share
/// one spelling.
enum class DurabilityMode : uint8_t { Off = 0, Async, Sync };

/// Display key ("off" / "async" / "sync").
const char *durabilityModeName(DurabilityMode M);

/// Parses a --durability value; returns false on unknown spelling.
bool parseDurabilityMode(const char *S, DurabilityMode &Out);

/// Redo operations. Values are stable on-disk format.
enum class WalOp : uint8_t { Put = 1, Erase = 2 };

/// One on-disk redo record (host-endian, fixed 40 bytes).
struct WalRecord {
  uint64_t Lsn;
  uint64_t Meta; ///< op | index<<8 | span<<32 (see file comment).
  uint64_t Key;
  uint64_t Val;
  uint64_t Check;

  static uint64_t packMeta(WalOp Op, uint32_t Index, uint32_t Span) {
    return uint64_t(Op) | (uint64_t(Index & 0xffffffu) << 8) |
           (uint64_t(Span) << 32);
  }
  WalOp op() const { return WalOp(Meta & 0xff); }
  uint32_t index() const { return uint32_t((Meta >> 8) & 0xffffffu); }
  uint32_t span() const { return uint32_t(Meta >> 32); }

  /// Seeded mix of words 0..3 so an all-zero record does not checksum to
  /// zero (a zero-filled tail must read as torn).
  uint64_t checksum() const;
};
static_assert(sizeof(WalRecord) == 40, "on-disk record is 5 words");

/// Drain-side counters (monotone since start()).
struct WalStats {
  uint64_t RecordsAppended = 0; ///< Ring appends (commit side).
  uint64_t RingStalls = 0;      ///< Appends that waited on a full ring.
  uint64_t FsyncBatches = 0;    ///< Drain cycles that reached fsync.
  uint64_t RecordsWritten = 0;  ///< Records handed to write(2).
  uint64_t BytesWritten = 0;
  uint64_t DroppedRecords = 0;  ///< Records discarded while degraded.
  bool Degraded = false;        ///< WAL sealed by an I/O failure.
};

/// Outcome of a waitDurable call.
enum class DurableWait : uint8_t {
  Ok = 0,           ///< The LSN is fsynced.
  DeadlineExceeded, ///< The deadline passed first (durability unknown yet).
  DurabilityLost,   ///< The WAL is degraded and will never reach the LSN.
};

/// Outcome of Wal::recover.
struct RecoveryStats {
  uint64_t RecordsScanned = 0;  ///< Valid records read across all shards.
  uint64_t RecordsReplayed = 0; ///< Records applied (<= scanned: group cut).
  uint64_t TxnsReplayed = 0;    ///< Complete LSN groups applied.
  uint64_t TornRecords = 0;     ///< Shard-local torn/corrupt tails truncated.
  uint64_t TruncatedBytes = 0;  ///< Bytes removed from files (torn + cut).
  uint64_t ApplyFailures = 0;   ///< Replay ops the store rejected (0 = clean).
  uint64_t CutLsn = 0;          ///< Highest LSN recovered (= new base).
  uint64_t CheckpointLsn = 0;   ///< Barrier of the checkpoint loaded (0: none).
  uint64_t CheckpointEntries = 0;   ///< (key,value) pairs applied from it.
  uint64_t CheckpointsDiscarded = 0; ///< Newer-but-invalid checkpoints skipped.
  bool ReclaimIdentityOk = true; ///< reclaimStats() identities held after.
  double Millis = 0;            ///< Wall time of scan + merge + replay.
};

/// Per-shard write-ahead redo log. Lifecycle: construct over a directory,
/// optionally recover() into a Store, start() the drain threads, attach
/// to the Store (Store::attachWal) so committing transactions register
/// publish-window appends, stop() before teardown.
class Wal {
public:
  struct Config {
    std::string Dir;            ///< Log directory (created if absent).
    uint32_t Shards = 16;       ///< Must match the store's shard count.
    uint32_t DrainThreads = 1;  ///< I/O threads; shard S drains on S % N.
    uint32_t RingSlots = 4096;  ///< Per-shard ring capacity (power of two).
    uint32_t FlushIntervalUs = 1000; ///< Group-commit window (idle bound).
  };

  explicit Wal(const Config &C);
  ~Wal(); // Stops (final drain + fsync) if still running.

  Wal(const Wal &) = delete;
  Wal &operator=(const Wal &) = delete;

  /// Scans the shard logs, truncates torn tails and incomplete-group
  /// suffixes, and replays the maximal complete prefix of the commit
  /// order into \p S shard-parallel (plain transactional insert/erase —
  /// call before attaching the Wal, so replay is not re-logged). Verifies
  /// the Store::reclaimStats identities afterward. Must run before
  /// start(); records the cut so start() re-bases post-recovery appends
  /// at exactly cut + 1.
  RecoveryStats recover(Store &S);

  /// Spawns the drain threads. append() may be called only between
  /// start() and stop().
  void start();

  /// Drains every ring, flushes, and joins the drain threads. Idempotent.
  void stop();

  /// Commit-side append, called inside the publish window (unique
  /// committer). The transaction's durable LSN is BaseLsn + Ticket; it
  /// becomes visible to the drainer only once the transaction's last
  /// record (Index == Count-1) is in its ring, so a group is never
  /// fsync-acked half-appended. Spins (bounded by drainer progress) when
  /// the shard ring is full.
  void append(uint32_t Shard, WalOp Op, Word Key, Word Val, uint64_t Ticket,
              uint32_t Index, uint32_t Count);

  /// Txn::PublishEntry trampoline: Ctx is the Wal, A packs
  /// (op << 32 | shard), B is the key, C the value.
  static void publishHook(void *Ctx, uint64_t Ticket, uint32_t Index,
                          uint32_t Count, Word A, Word B, Word C);

  /// Blocks until every record with LSN <= \p Lsn is fsynced (the sync
  /// ack point). Kicks the drainer, so the wait is one group-commit
  /// cycle, not a flush-interval sleep. Returns DurabilityLost without
  /// further blocking once the WAL is degraded and the LSN is beyond
  /// the frozen durable cut.
  DurableWait waitDurable(uint64_t Lsn);

  /// Deadline variant: additionally gives up with DeadlineExceeded when
  /// \p Deadline passes first — a wedged or dying disk must not block a
  /// sync-mode network worker forever. DeadlineExceeded makes no claim
  /// either way about the record's eventual durability.
  DurableWait waitDurable(uint64_t Lsn,
                          std::chrono::steady_clock::time_point Deadline);

  /// Highest LSN known durable.
  uint64_t durableLsn() const {
    return DurableLsn.load(std::memory_order_acquire);
  }

  /// True once an I/O failure sealed the log (see file comment).
  bool degraded() const {
    return DegradedFlag.load(std::memory_order_acquire);
  }

  /// The LSN a given publish ticket logs (or logged) at: BaseLsn +
  /// ticket. Valid between start() and stop(). The checkpointer uses it
  /// to turn a pinned snapshot epoch into the checkpoint barrier LSN —
  /// exact because a snapshot pinned at epoch E sees precisely the
  /// commits with ticket <= E, i.e. the records with LSN <= lsnOfTicket(E).
  uint64_t lsnOfTicket(uint64_t Ticket) const { return BaseLsn + Ticket; }

  /// Log compaction: rewrites every shard file keeping only records with
  /// LSN > \p Barrier, fsyncs the replacements, and re-points the drain
  /// fds. Callable while the log is live (the checkpointer's thread);
  /// serialized against the drainers per shard. Requires the barrier to
  /// be durable already — if DurableLsn < Barrier (e.g. degraded), the
  /// rotation is skipped and 0 is returned. Returns bytes removed.
  uint64_t truncateBelow(uint64_t Barrier);

  /// Log directory (checkpoint files live alongside the shard logs).
  const std::string &dir() const { return Cfg.Dir; }

  /// The LSN of the last append *this thread* performed (0 if none) —
  /// what a worker passes to waitDurable to ack its own write. Process-
  /// wide thread-local, deliberately: a thread talks to one Wal.
  static uint64_t lastAppendedLsn();

  WalStats stats() const;

  /// Shard log file path (tests and tooling).
  std::string shardFile(uint32_t Shard) const;

private:
  struct alignas(64) Ring {
    std::unique_ptr<WalRecord[]> Buf;
    std::atomic<uint64_t> Head{0}; ///< Producer cursor (publish window).
    std::atomic<uint64_t> Tail{0}; ///< Consumer cursor (drain thread).
  };

  void drainLoop(unsigned ThreadIndex);
  /// One drain cycle: snapshot the published LSN, empty this thread's
  /// rings into their files, fsync exactly the files written this cycle,
  /// advance durability. Scratch/DirtyShards are loop-owned reusable
  /// buffers.
  void drainCycle(unsigned ThreadIndex, std::vector<uint8_t> &Scratch,
                  std::vector<uint32_t> &DirtyShards);
  /// Seals the log after an I/O failure (degraded mode) and wakes every
  /// durability waiter so they observe DurabilityLost. Reads errno.
  void enterDegraded(const char *What, const std::string &Path);

  Config Cfg;
  std::vector<Ring> Rings;
  std::vector<int> Fds; ///< One O_APPEND fd per shard (drain side only).
  /// Per-shard file lock: serializes a drainer's write+fsync against
  /// truncateBelow's rewrite-and-swap of the same shard file. Uncontended
  /// except during a rotation. unique_ptr because mutexes cannot live in
  /// a resizable vector directly.
  std::vector<std::unique_ptr<std::mutex>> FileLocks;

  /// Highest LSN of the durable history this log continues: 1 for a
  /// fresh/empty log (so the first record lands at LSN 2), the recovery
  /// cut after recover(). start() derives BaseLsn from it.
  uint64_t LastLsn = 1;

  /// LSN base, derived at start() as LastLsn - lastPublishTicket() (mod
  /// 2^64 — the subtraction may wrap; append's BaseLsn + Ticket unwraps
  /// it). Tickets consumed before start() — snapshot-mode recovery
  /// replay, pre-attach prepopulation, earlier runs in this process —
  /// are thereby absorbed, and the first logged commit lands exactly at
  /// LastLsn + 1. Contiguity from there needs every later ticket to be
  /// taken by a logging commit, which attachWal guarantees for store
  /// traffic (raw fast paths refuse while a log is attached).
  uint64_t BaseLsn = 0;

  /// Highest LSN whose transaction is fully ring-published. Monotone:
  /// stores happen only inside the serialized publish window.
  std::atomic<uint64_t> PublishedLsn{0};
  /// Highest LSN known fsynced (min over drain threads' cuts).
  std::atomic<uint64_t> DurableLsn{0};

  std::mutex WaitMutex;                  ///< Guards ThreadCut + both CVs.
  std::condition_variable DrainCv;       ///< Wakes drainers early.
  std::condition_variable DurableCv;     ///< Wakes waitDurable callers.
  std::vector<uint64_t> ThreadCut;       ///< Per-drainer fsynced cut.
  uint32_t SyncWaitersPending = 0;

  std::vector<std::thread> Drainers;
  std::atomic<bool> Stopping{false};
  bool Started = false;

  std::atomic<bool> DegradedFlag{false};

  std::atomic<uint64_t> StatAppends{0};
  std::atomic<uint64_t> StatRingStalls{0};
  std::atomic<uint64_t> StatFsyncBatches{0};
  std::atomic<uint64_t> StatRecordsWritten{0};
  std::atomic<uint64_t> StatBytesWritten{0};
  std::atomic<uint64_t> StatDroppedRecords{0};
};

} // namespace kv
} // namespace satm

#endif // SATM_KV_WAL_H
