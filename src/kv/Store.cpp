//===- kv/Store.cpp - SATM-KV store implementation -----------------------===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "kv/Store.h"

#include "stm/Barriers.h"
#include "stm/Txn.h"

#include <cassert>

using namespace satm;
using namespace satm::kv;
using namespace satm::rt;

namespace {

const TypeDescriptor IntArrayType("kv.int[]", TypeKind::IntArray);
const TypeDescriptor RefArrayType("kv.ref[]", TypeKind::RefArray);
// Value record: slot 0 holds the value word (or Store::Tombstone).
const TypeDescriptor ValueType("kv.Value", 1, {});
// Shard metadata: slot 0 counts resident index entries.
const TypeDescriptor MetaType("kv.ShardMeta", 1, {});

uint32_t roundUpPow2(uint32_t V) {
  uint32_t P = 1;
  while (P < V)
    P <<= 1;
  return P;
}

/// Shared driver for the budgeted transactional operations: runs \p Body
/// (which sets \p St to the committed outcome) as an eager transaction,
/// cutting it short via userAbort when \p B runs out. The budget check sits
/// at the top of each attempt, before any transactional access, so a shed
/// operation has touched nothing. A serial-irrevocable attempt (the
/// contention manager's escalation) skips the check entirely: it cannot
/// roll back, so it must not userAbort — and it is guaranteed to finish.
template <typename BodyF>
OpStatus runBudgeted(const OpBudget &B, OpStatus &St, BodyF &&Body) {
  uint32_t Attempts = 0;
  OpStatus Cut = OpStatus::Ok;
  bool Committed = stm::atomically([&] {
    stm::Txn &Tx = stm::Txn::forThisThread();
    if (!Tx.inSerialMode()) {
      if (B.Deadline != std::chrono::steady_clock::time_point{} &&
          std::chrono::steady_clock::now() >= B.Deadline) {
        Cut = OpStatus::DeadlineExceeded;
        Tx.userAbort();
      }
      if (B.MaxAttempts != 0 && ++Attempts > B.MaxAttempts) {
        Cut = OpStatus::Overloaded;
        Tx.userAbort();
      }
    }
    Body(Tx);
  });
  return Committed ? St : Cut;
}

} // namespace

const char *satm::kv::opStatusName(OpStatus S) {
  switch (S) {
  case OpStatus::Ok:
    return "Ok";
  case OpStatus::NotFound:
    return "NotFound";
  case OpStatus::Mismatch:
    return "Mismatch";
  case OpStatus::Full:
    return "Full";
  case OpStatus::Overloaded:
    return "Overloaded";
  case OpStatus::DeadlineExceeded:
    return "DeadlineExceeded";
  }
  return "?";
}

Store::Store(rt::Heap &Heap, const StoreConfig &C) : H(Heap) {
  Capacity = roundUpPow2(C.CapacityPerShard < 2 ? 2 : C.CapacityPerShard);
  uint32_t NumShards = roundUpPow2(C.Shards < 1 ? 1 : C.Shards);
  Reps.reserve(NumShards);
  for (uint32_t S = 0; S < NumShards; ++S) {
    ShardRep R;
    R.Keys = H.allocateArray(&IntArrayType, Capacity, BirthState::Shared);
    R.Vals = H.allocateArray(&RefArrayType, Capacity, BirthState::Shared);
    R.Meta = H.allocate(&MetaType, BirthState::Shared);
    Reps.push_back(R);
  }
}

//===----------------------------------------------------------------------===
// Non-transactional plane.
//===----------------------------------------------------------------------===

bool Store::get(Word Key, Word &Out) const {
  const ShardRep &S = Reps[shardOf(Key)];
  const uint32_t Mask = Capacity - 1;
  uint32_t I = probeStart(Key, Capacity);
  for (uint32_t N = 0; N < Capacity; ++N, I = (I + 1) & Mask) {
    Word K = stm::ntRead(S.Keys, I);
    if (K == 0)
      return false; // Probe chains never shrink: empty slot ends the search.
    if (K != Key + 1)
      continue;
    const Object *V = Object::fromWord(stm::ntRead(S.Vals, I));
    // The index entry and its value object are linked inside one
    // transaction; a probe that saw the key cannot miss the object.
    assert(V && "index entry without a value object");
    Out = stm::ntRead(V, 0);
    return Out != Tombstone;
  }
  return false;
}

bool Store::putFast(Word Key, Word Val) {
  assert(Val != Tombstone && "Tombstone is reserved");
  const ShardRep &S = Reps[shardOf(Key)];
  const uint32_t Mask = Capacity - 1;
  uint32_t I = probeStart(Key, Capacity);
  for (uint32_t N = 0; N < Capacity; ++N, I = (I + 1) & Mask) {
    Word K = stm::ntRead(S.Keys, I);
    if (K == 0)
      return false;
    if (K != Key + 1)
      continue;
    Object *V = Object::fromWord(stm::ntRead(S.Vals, I));
    assert(V && "index entry without a value object");
    stm::ntWrite(V, 0, Val);
    return true;
  }
  return false;
}

bool Store::put(Word Key, Word Val) {
  if (putFast(Key, Val))
    return true;
  return insert(Key, Val);
}

//===----------------------------------------------------------------------===
// Transactional plane.
//===----------------------------------------------------------------------===

int Store::findSlotTxn(stm::Txn &Tx, const ShardRep &S, Word Key,
                       int *FirstFree) const {
  const uint32_t Mask = Capacity - 1;
  uint32_t I = probeStart(Key, Capacity);
  if (FirstFree)
    *FirstFree = -1;
  for (uint32_t N = 0; N < Capacity; ++N, I = (I + 1) & Mask) {
    Word K = Tx.read(S.Keys, I);
    if (K == Key + 1)
      return int(I);
    if (K == 0) {
      if (FirstFree)
        *FirstFree = int(I);
      return -1;
    }
  }
  return -1; // Full shard, no free slot either.
}

OpStatus Store::insert(Word Key, Word Val, const OpBudget &B) {
  assert(Val != Tombstone && "Tombstone is reserved");
  ShardRep &S = Reps[shardOf(Key)];
  OpStatus St = OpStatus::Ok;
  return runBudgeted(B, St, [&](stm::Txn &Tx) {
    St = OpStatus::Ok;
    int FirstFree = -1;
    int Slot = findSlotTxn(Tx, S, Key, &FirstFree);
    if (Slot >= 0) {
      // Present (possibly erased): overwrite in place.
      Object *V = Tx.readRef(S.Vals, uint32_t(Slot));
      Tx.write(V, 0, Val);
      return;
    }
    if (FirstFree < 0) {
      St = OpStatus::Full;
      return;
    }
    // Claim the slot. The value object is born per config().birthState():
    // under DEA it stays private — invisible to every other thread — until
    // the transactional ref store below publishes it (§4), so its
    // initializing rawStore needs no barrier.
    Object *V = H.allocate(&ValueType, stm::config().birthState());
    V->rawStore(0, Val);
    Tx.write(S.Keys, uint32_t(FirstFree), Key + 1);
    Tx.writeRef(S.Vals, uint32_t(FirstFree), V);
    Tx.write(S.Meta, 0, Tx.read(S.Meta, 0) + 1);
  });
}

bool Store::insert(Word Key, Word Val) {
  return insert(Key, Val, OpBudget{}) == OpStatus::Ok;
}

OpStatus Store::erase(Word Key, const OpBudget &B) {
  ShardRep &S = Reps[shardOf(Key)];
  OpStatus St = OpStatus::Ok;
  return runBudgeted(B, St, [&](stm::Txn &Tx) {
    St = OpStatus::NotFound;
    int Slot = findSlotTxn(Tx, S, Key, nullptr);
    if (Slot < 0)
      return;
    Object *V = Tx.readRef(S.Vals, uint32_t(Slot));
    if (Tx.read(V, 0) == Tombstone)
      return;
    Tx.write(V, 0, Tombstone);
    St = OpStatus::Ok;
  });
}

bool Store::erase(Word Key) {
  return erase(Key, OpBudget{}) == OpStatus::Ok;
}

OpStatus Store::cas(Word Key, Word Expected, Word Desired,
                    const OpBudget &B) {
  assert(Desired != Tombstone && "Tombstone is reserved");
  ShardRep &S = Reps[shardOf(Key)];
  OpStatus St = OpStatus::Ok;
  return runBudgeted(B, St, [&](stm::Txn &Tx) {
    St = OpStatus::NotFound;
    int Slot = findSlotTxn(Tx, S, Key, nullptr);
    if (Slot < 0)
      return;
    Object *V = Tx.readRef(S.Vals, uint32_t(Slot));
    Word Cur = Tx.read(V, 0);
    if (Cur == Tombstone)
      return;
    if (Cur != Expected) {
      St = OpStatus::Mismatch;
      return;
    }
    Tx.write(V, 0, Desired);
    St = OpStatus::Ok;
  });
}

bool Store::cas(Word Key, Word Expected, Word Desired) {
  return cas(Key, Expected, Desired, OpBudget{}) == OpStatus::Ok;
}

OpStatus Store::multiGet(const Word *Keys, size_t N, Word *Out,
                         const OpBudget &B, size_t *Found) const {
  size_t Hits = 0;
  OpStatus St = OpStatus::Ok;
  OpStatus R = runBudgeted(B, St, [&](stm::Txn &Tx) {
    Hits = 0;
    for (size_t I = 0; I < N; ++I) {
      const ShardRep &S = Reps[shardOf(Keys[I])];
      int Slot = findSlotTxn(Tx, S, Keys[I], nullptr);
      if (Slot < 0) {
        Out[I] = Tombstone;
        continue;
      }
      Object *V = Tx.readRef(S.Vals, uint32_t(Slot));
      Out[I] = Tx.read(V, 0);
      if (Out[I] != Tombstone)
        ++Hits;
    }
  });
  if (Found)
    *Found = R == OpStatus::Ok ? Hits : 0;
  return R;
}

size_t Store::multiGet(const Word *Keys, size_t N, Word *Out) const {
  size_t Found = 0;
  multiGet(Keys, N, Out, OpBudget{}, &Found);
  return Found;
}

//===----------------------------------------------------------------------===
// Snapshot plane.
//===----------------------------------------------------------------------===

size_t Store::snapshotMultiGet(const Word *Keys, size_t N, Word *Out) const {
  size_t Hits = 0;
  // Read-only snapshot region: the probe and the value loads all resolve
  // against the pinned epoch's version records. The body cannot conflict
  // (no writes, no validation), so it executes exactly once.
  stm::Txn::runSnapshot([&] {
    stm::Txn &Tx = stm::Txn::forThisThread();
    Hits = 0;
    for (size_t I = 0; I < N; ++I) {
      const ShardRep &S = Reps[shardOf(Keys[I])];
      int Slot = findSlotTxn(Tx, S, Keys[I], nullptr);
      if (Slot < 0) {
        Out[I] = Tombstone;
        continue;
      }
      Object *V = Tx.readRef(S.Vals, uint32_t(Slot));
      Out[I] = Tx.read(V, 0);
      if (Out[I] != Tombstone)
        ++Hits;
    }
  });
  return Hits;
}

bool Store::snapshotGet(Word Key, Word &Out) const {
  Word V = Tombstone;
  snapshotMultiGet(&Key, 1, &V);
  if (V == Tombstone)
    return false;
  Out = V;
  return true;
}

OpStatus Store::readModifyWrite(
    const Word *Keys, size_t N,
    const std::function<void(Word *Vals, size_t N)> &Mutate,
    const OpBudget &B) {
  std::vector<Word> Buf(N);
  std::vector<rt::Object *> Objs(N);
  OpStatus St = OpStatus::Ok;
  return runBudgeted(B, St, [&](stm::Txn &Tx) {
    St = OpStatus::NotFound;
    for (size_t I = 0; I < N; ++I) {
      const ShardRep &S = Reps[shardOf(Keys[I])];
      int Slot = findSlotTxn(Tx, S, Keys[I], nullptr);
      if (Slot < 0)
        return;
      Objs[I] = Tx.readRef(S.Vals, uint32_t(Slot));
      Buf[I] = Tx.read(Objs[I], 0);
      if (Buf[I] == Tombstone)
        return;
    }
    Mutate(Buf.data(), N);
    for (size_t I = 0; I < N; ++I) {
      assert(Buf[I] != Tombstone && "Tombstone is reserved");
      Tx.write(Objs[I], 0, Buf[I]);
    }
    St = OpStatus::Ok;
  });
}

bool Store::readModifyWrite(
    const Word *Keys, size_t N,
    const std::function<void(Word *Vals, size_t N)> &Mutate) {
  return readModifyWrite(Keys, N, Mutate, OpBudget{}) == OpStatus::Ok;
}

OpStatus Store::rmwAdd(const Word *Keys, size_t N, Word Delta,
                       const OpBudget &B) {
  return readModifyWrite(
      Keys, N,
      [Delta](Word *Vals, size_t Count) {
        for (size_t I = 0; I < Count; ++I)
          Vals[I] += Delta;
      },
      B);
}

bool Store::rmwAdd(const Word *Keys, size_t N, Word Delta) {
  return rmwAdd(Keys, N, Delta, OpBudget{}) == OpStatus::Ok;
}

//===----------------------------------------------------------------------===
// Introspection.
//===----------------------------------------------------------------------===

uint64_t Store::size() const {
  uint64_t Sum = 0;
  for (const ShardRep &S : Reps)
    Sum += stm::ntRead(S.Meta, 0);
  return Sum;
}

rt::Object *Store::valueObjectFor(Word Key) const {
  const ShardRep &S = Reps[shardOf(Key)];
  const uint32_t Mask = Capacity - 1;
  uint32_t I = probeStart(Key, Capacity);
  for (uint32_t N = 0; N < Capacity; ++N, I = (I + 1) & Mask) {
    Word K = stm::ntRead(S.Keys, I);
    if (K == 0)
      return nullptr;
    if (K == Key + 1)
      return Object::fromWord(stm::ntRead(S.Vals, I));
  }
  return nullptr;
}
