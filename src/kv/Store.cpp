//===- kv/Store.cpp - SATM-KV store implementation -----------------------===//
//
// Part of the SATM project, reproducing Shpeisman et al., PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "kv/Store.h"

#include "kv/Wal.h"
#include "stm/Barriers.h"
#include "stm/Quiesce.h"
#include "stm/Snapshot.h"
#include "stm/Txn.h"

#include <cassert>

using namespace satm;
using namespace satm::kv;
using namespace satm::rt;

namespace {

const TypeDescriptor IntArrayType("kv.int[]", TypeKind::IntArray);
const TypeDescriptor RefArrayType("kv.ref[]", TypeKind::RefArray);
// Value record: slot 0 holds the value word (or Store::Tombstone).
const TypeDescriptor ValueType("kv.Value", 1, {});
// Shard metadata: slot 0 counts resident index entries.
const TypeDescriptor MetaType("kv.ShardMeta", 1, {});

uint32_t roundUpPow2(uint32_t V) {
  uint32_t P = 1;
  while (P < V)
    P <<= 1;
  return P;
}

/// Shared driver for the budgeted transactional operations: runs \p Body
/// (which sets \p St to the committed outcome) as an eager transaction,
/// cutting it short via userAbort when \p B runs out. The budget check sits
/// at the top of each attempt, before any transactional access, so a shed
/// operation has touched nothing. A serial-irrevocable attempt (the
/// contention manager's escalation) skips the check entirely: it cannot
/// roll back, so it must not userAbort — and it is guaranteed to finish.
template <typename BodyF>
OpStatus runBudgeted(const OpBudget &B, OpStatus &St, BodyF &&Body) {
  uint32_t Attempts = 0;
  OpStatus Cut = OpStatus::Ok;
  bool Committed = stm::atomically([&] {
    stm::Txn &Tx = stm::Txn::forThisThread();
    if (!Tx.inSerialMode()) {
      if (B.Deadline != std::chrono::steady_clock::time_point{} &&
          std::chrono::steady_clock::now() >= B.Deadline) {
        Cut = OpStatus::DeadlineExceeded;
        Tx.userAbort();
      }
      if (B.MaxAttempts != 0 && ++Attempts > B.MaxAttempts) {
        Cut = OpStatus::Overloaded;
        Tx.userAbort();
      }
    }
    Body(Tx);
  });
  return Committed ? St : Cut;
}

} // namespace

const char *satm::kv::opStatusName(OpStatus S) {
  switch (S) {
  case OpStatus::Ok:
    return "Ok";
  case OpStatus::NotFound:
    return "NotFound";
  case OpStatus::Mismatch:
    return "Mismatch";
  case OpStatus::Full:
    return "Full";
  case OpStatus::Overloaded:
    return "Overloaded";
  case OpStatus::DeadlineExceeded:
    return "DeadlineExceeded";
  case OpStatus::DurabilityLost:
    return "DurabilityLost";
  }
  return "?";
}

Store::Store(rt::Heap &Heap, const StoreConfig &C) : H(Heap) {
  Capacity = roundUpPow2(C.CapacityPerShard < 2 ? 2 : C.CapacityPerShard);
  uint32_t NumShards = roundUpPow2(C.Shards < 1 ? 1 : C.Shards);
  Reps.reserve(NumShards);
  Pools.reserve(NumShards);
  for (uint32_t S = 0; S < NumShards; ++S) {
    ShardRep R;
    R.Keys = H.allocateArray(&IntArrayType, Capacity, BirthState::Shared);
    R.Vals = H.allocateArray(&RefArrayType, Capacity, BirthState::Shared);
    R.Meta = H.allocate(&MetaType, BirthState::Shared);
    Reps.push_back(R);
    Pools.push_back(std::make_unique<ShardPool>());
  }
}

//===----------------------------------------------------------------------===
// Value-record retire pools (quiescence-deferred reclamation).
//===----------------------------------------------------------------------===

void Store::pushRetired(uint32_t Shard, rt::Object *V, uint32_t Slot) {
  using stm::Quiescence;
  ShardPool &P = *Pools[Shard];
  std::lock_guard<std::mutex> Lock(P.Mutex);
  P.Queue.push_back(
      {V, Slot, Quiescence::currentEpoch(), Quiescence::snapshotStable()});
}

bool Store::popRecycled(uint32_t Shard, RetiredRecord &Out) {
  using stm::Quiescence;
  ShardPool &P = *Pools[Shard];
  std::lock_guard<std::mutex> Lock(P.Mutex);
  if (P.Queue.empty())
    return false;
  const RetiredRecord &F = P.Queue.front();
  if (Quiescence::currentEpoch() <= F.RetireEpoch) {
    // Never block an insert on the horizon: advance the epoch once (it
    // stalls when QuiesceOnCommit is off) and let a later harvest reap.
    Quiescence::advanceEpoch();
    return false;
  }
  if (Quiescence::minPinnedEpoch() < F.RetireStable)
    return false; // A pinned snapshot predates the unlink: keep parking.
  Out = F;
  P.Queue.pop_front();
  return true;
}

Store::ReclaimStats Store::reclaimStats() const {
  uint64_t Pool = 0;
  for (const auto &P : Pools) {
    std::lock_guard<std::mutex> Lock(P->Mutex);
    Pool += P->Queue.size();
  }
  return {ValueAllocated.load(std::memory_order_relaxed),
          ValueRetired.load(std::memory_order_relaxed),
          ValueRecycled.load(std::memory_order_relaxed), Pool};
}

//===----------------------------------------------------------------------===
// Non-transactional plane.
//===----------------------------------------------------------------------===

bool Store::get(Word Key, Word &Out) const {
  const ShardRep &S = Reps[shardOf(Key)];
  const uint32_t Mask = Capacity - 1;
  uint32_t I = probeStart(Key, Capacity);
  for (uint32_t N = 0; N < Capacity; ++N, I = (I + 1) & Mask) {
    Word K = stm::ntRead(S.Keys, I);
    if (K == 0)
      return false; // Probe chains never shrink: empty slot ends the search.
    if (K != Key + 1)
      continue;
    for (;;) {
      Word VW = stm::ntRead(S.Vals, I);
      const Object *V = Object::fromWord(VW);
      if (!V)
        return false; // Erased: the record was unlinked.
      Out = stm::ntRead(V, 0);
      // Re-confirm the link after the value read: a concurrent erase may
      // have unlinked V and a recycling insert rewritten it for another
      // key. An unchanged link means the value belonged to Key at the
      // second read (unlink commits publish before any reuse).
      if (stm::ntRead(S.Vals, I) == VW)
        return Out != Tombstone;
    }
  }
  return false;
}

void Store::logRedo(stm::Txn &Tx, uint32_t Shard, WalOp Op, Word Key,
                    Word Val) {
  if (!DurableLog)
    return; // --durability=off: the log path is fully elided.
  stm::Txn::PublishEntry E;
  E.Fn = &Wal::publishHook;
  E.Ctx = DurableLog;
  E.A = (Word(uint8_t(Op)) << 32) | Shard;
  E.B = Key;
  E.C = Val;
  Tx.onPublish(E);
}

bool Store::putFast(Word Key, Word Val) {
  assert(Val != Tombstone && "Tombstone is reserved");
  if (DurableLog)
    return false; // Raw stores bypass the redo log: take the txn path.
  const ShardRep &S = Reps[shardOf(Key)];
  const uint32_t Mask = Capacity - 1;
  uint32_t I = probeStart(Key, Capacity);
  for (uint32_t N = 0; N < Capacity; ++N, I = (I + 1) & Mask) {
    Word K = stm::ntRead(S.Keys, I);
    if (K == 0)
      return false;
    if (K != Key + 1)
      continue;
    Word VW = stm::ntRead(S.Vals, I);
    Object *V = Object::fromWord(VW);
    if (!V)
      return false; // Erased: the transactional insert path resurrects.
    // Store under an aggregated anon hold and re-confirm the link while
    // holding it: a concurrent erase may unlink V (parking it for reuse
    // under another key) between the probe and the store. The re-read is
    // a raw load on purpose — a full barrier read here could wait on the
    // serial gate while holding V's record, and a speculative value only
    // causes a harmless fallback to the transactional path.
    stm::AggregatedWriter W(V);
    if (S.Vals->rawLoad(I, std::memory_order_acquire) != VW)
      return false; // Unlinked underneath us.
    W.store(0, Val);
    return true;
  }
  return false;
}

bool Store::put(Word Key, Word Val) {
  if (putFast(Key, Val))
    return true;
  return insert(Key, Val);
}

bool Store::putFastOwned(Word Key, Word Val) {
  assert(Val != Tombstone && "Tombstone is reserved");
  if (DurableLog)
    return false; // Raw stores bypass the redo log: take the txn path.
  const ShardRep &S = Reps[shardOf(Key)];
  const uint32_t Mask = Capacity - 1;
  uint32_t I = probeStart(Key, Capacity);
  for (uint32_t N = 0; N < Capacity; ++N, I = (I + 1) & Mask) {
    // Plain acquire loads: index mutations of this shard either happened
    // on this thread (the owner executes all single-key writes) or
    // synchronized through the AffineGate handshake before the window
    // opened, so no record check is needed.
    Word K = S.Keys->rawLoad(I, std::memory_order_acquire);
    if (K == 0)
      return false;
    if (K != Key + 1)
      continue;
    Object *V =
        Object::fromWord(S.Vals->rawLoad(I, std::memory_order_acquire));
    if (!V)
      return false; // Erased: the transactional insert path resurrects.
    // Snapshot-visibility guard: once V has a version chain (a past
    // transactional write — e.g. a CAS — published nodes for it),
    // snapshot readers resolve V through the chain and a raw overwrite
    // here would be permanently invisible to them, freezing snapshotGet
    // at the last chained value. Fall back to the transactional insert
    // (the caller's fallback path), which publishes a version node.
    // Chain-less objects keep the raw store: snap::readAtEpoch reads
    // them in place (the documented nt caveat, stm/Snapshot.h).
    if (stm::config().SnapshotEnabled && stm::snap::tableEntries() != 0 &&
        stm::snap::newestEpoch(V) != 0)
      return false;
    // No unlink race: erases of this shard run only under this window or
    // behind the gate, never concurrently with it.
    V->rawStore(0, Val, std::memory_order_release);
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===
// Transactional plane.
//===----------------------------------------------------------------------===

int Store::findSlotTxn(stm::Txn &Tx, const ShardRep &S, Word Key,
                       int *FirstFree) const {
  const uint32_t Mask = Capacity - 1;
  uint32_t I = probeStart(Key, Capacity);
  if (FirstFree)
    *FirstFree = -1;
  for (uint32_t N = 0; N < Capacity; ++N, I = (I + 1) & Mask) {
    Word K = Tx.read(S.Keys, I);
    if (K == Key + 1)
      return int(I);
    if (K == 0) {
      if (FirstFree)
        *FirstFree = int(I);
      return -1;
    }
  }
  return -1; // Full shard, no free slot either.
}

OpStatus Store::insert(Word Key, Word Val, const OpBudget &B) {
  assert(Val != Tombstone && "Tombstone is reserved");
  uint32_t Shard = shardOf(Key);
  ShardRep &S = Reps[Shard];
  // Harvest at most one ripe retired record *before* the attempt loop —
  // popping inside the body would double-pop across re-executions.
  RetiredRecord Recycled{nullptr, 0, 0, 0};
  bool Harvested = popRecycled(Shard, Recycled);
  bool UsedRecycled = false;
  OpStatus St = OpStatus::Ok;
  OpStatus R = runBudgeted(B, St, [&](stm::Txn &Tx) {
    St = OpStatus::Ok;
    UsedRecycled = false;
    int FirstFree = -1;
    int Slot = findSlotTxn(Tx, S, Key, &FirstFree);
    int Target = Slot;
    bool RecycledSlot = false;
    if (Slot >= 0) {
      Object *V = Tx.readRef(S.Vals, uint32_t(Slot));
      if (V) {
        // Present: overwrite in place.
        Tx.write(V, 0, Val);
        logRedo(Tx, Shard, WalOp::Put, Key, Val);
        return;
      }
      // Erased key: resurrect by relinking a value record below. Meta is
      // untouched — size() counts index entries, which never shrink.
    } else if (FirstFree >= 0) {
      Target = FirstFree;
    } else if (Harvested &&
               Tx.readRef(S.Vals, Recycled.Slot) == nullptr) {
      // Tombstone-saturated shard: the probe wrapped the whole table
      // without an empty slot, so every slot is on every key's probe
      // sequence and any still-tombstoned slot is a legal home for Key.
      // Reuse the harvested record's own slot — ripened past both
      // reclamation horizons, and (checked transactionally above) not
      // resurrected since. The Keys rewrite is transactional, so
      // concurrent probes validate against it, and the slot stays
      // non-zero throughout: nt probe chains never see it go empty.
      Target = int(Recycled.Slot);
      RecycledSlot = true;
    } else {
      St = OpStatus::Full;
      return;
    }
    Object *V;
    if (Harvested) {
      // A recycled record is Shared and may have straggling optimistic
      // readers from its previous key: write transactionally so the
      // acquire arbitrates against them and the commit-time version bump
      // (plus the published version node under SnapshotEnabled) kills
      // their validation.
      V = Recycled.V;
      Tx.write(V, 0, Val);
      UsedRecycled = true;
    } else {
      // Fresh record, born per config().birthState(): under DEA it stays
      // private — invisible to every other thread — until the
      // transactional ref store below publishes it (§4), so its
      // initializing rawStore needs no barrier.
      V = H.allocate(&ValueType, stm::config().birthState());
      V->rawStore(0, Val);
      ValueAllocated.fetch_add(1, std::memory_order_relaxed);
    }
    if (Slot < 0) {
      Tx.write(S.Keys, uint32_t(Target), Key + 1);
      // A recycled slot replaces a tombstoned entry with a live one:
      // the resident-entry count is unchanged, so no Meta bump.
      if (!RecycledSlot)
        Tx.write(S.Meta, 0, Tx.read(S.Meta, 0) + 1);
    }
    Tx.writeRef(S.Vals, uint32_t(Target), V);
    logRedo(Tx, Shard, WalOp::Put, Key, Val);
  });
  if (Harvested) {
    if (R == OpStatus::Ok && UsedRecycled)
      ValueRecycled.fetch_add(1, std::memory_order_relaxed);
    else // Unused (overwrite path or shed): park it again, slot intact.
      pushRetired(Shard, Recycled.V, Recycled.Slot);
  }
  return R;
}

bool Store::insert(Word Key, Word Val) {
  return insert(Key, Val, OpBudget{}) == OpStatus::Ok;
}

OpStatus Store::multiPut(const Word *Keys, const Word *Vals, size_t N,
                         OpStatus *PerKey, const OpBudget &B) {
  OpStatus St = OpStatus::Ok;
  return runBudgeted(B, St, [&](stm::Txn &Tx) {
    St = OpStatus::Ok;
    for (size_t I = 0; I < N; ++I) {
      assert(Vals[I] != Tombstone && "Tombstone is reserved");
      uint32_t Shard = shardOf(Keys[I]);
      ShardRep &S = Reps[Shard];
      int FirstFree = -1;
      int Slot = findSlotTxn(Tx, S, Keys[I], &FirstFree);
      if (Slot >= 0) {
        Object *V = Tx.readRef(S.Vals, uint32_t(Slot));
        if (V) {
          // Present (or written earlier in this very batch — eager
          // writes land in place, so the probe read our own insert):
          // overwrite.
          Tx.write(V, 0, Vals[I]);
          logRedo(Tx, Shard, WalOp::Put, Keys[I], Vals[I]);
          PerKey[I] = OpStatus::Ok;
          continue;
        }
        // Erased key: resurrect by relinking a fresh record below.
      } else if (FirstFree < 0) {
        // No retire-pool harvest on the batch path (see Store.h): the
        // caller retries this key through the single insert.
        PerKey[I] = OpStatus::Full;
        continue;
      }
      uint32_t Target = uint32_t(Slot >= 0 ? Slot : FirstFree);
      Object *V = H.allocate(&ValueType, stm::config().birthState());
      V->rawStore(0, Vals[I]);
      ValueAllocated.fetch_add(1, std::memory_order_relaxed);
      if (Slot < 0) {
        Tx.write(S.Keys, Target, Keys[I] + 1);
        Tx.write(S.Meta, 0, Tx.read(S.Meta, 0) + 1);
      }
      Tx.writeRef(S.Vals, Target, V);
      logRedo(Tx, Shard, WalOp::Put, Keys[I], Vals[I]);
      PerKey[I] = OpStatus::Ok;
    }
  });
}

OpStatus Store::erase(Word Key, const OpBudget &B) {
  uint32_t Shard = shardOf(Key);
  ShardRep &S = Reps[Shard];
  OpStatus St = OpStatus::Ok;
  return runBudgeted(B, St, [&](stm::Txn &Tx) {
    St = OpStatus::NotFound;
    int Slot = findSlotTxn(Tx, S, Key, nullptr);
    if (Slot < 0)
      return;
    Object *V = Tx.readRef(S.Vals, uint32_t(Slot));
    if (!V)
      return; // Already erased.
    // Unlink the record instead of tombstoning its value in place: it
    // becomes unreachable from the index at commit and parks in the
    // shard's retire pool for epoch-gated recycling. The park runs
    // post-commit (discarded on abort), when the retirement horizon —
    // current epoch and stable snapshot ticket — is final.
    Tx.writeRef(S.Vals, uint32_t(Slot), nullptr);
    Tx.onCommit([this, Shard, V, Slot = uint32_t(Slot)] {
      ValueRetired.fetch_add(1, std::memory_order_relaxed);
      pushRetired(Shard, V, Slot);
    });
    logRedo(Tx, Shard, WalOp::Erase, Key, 0);
    St = OpStatus::Ok;
  });
}

bool Store::erase(Word Key) {
  return erase(Key, OpBudget{}) == OpStatus::Ok;
}

OpStatus Store::cas(Word Key, Word Expected, Word Desired,
                    const OpBudget &B) {
  assert(Desired != Tombstone && "Tombstone is reserved");
  ShardRep &S = Reps[shardOf(Key)];
  OpStatus St = OpStatus::Ok;
  return runBudgeted(B, St, [&](stm::Txn &Tx) {
    St = OpStatus::NotFound;
    int Slot = findSlotTxn(Tx, S, Key, nullptr);
    if (Slot < 0)
      return;
    Object *V = Tx.readRef(S.Vals, uint32_t(Slot));
    if (!V)
      return; // Erased.
    Word Cur = Tx.read(V, 0);
    if (Cur == Tombstone)
      return;
    if (Cur != Expected) {
      St = OpStatus::Mismatch;
      return;
    }
    Tx.write(V, 0, Desired);
    logRedo(Tx, shardOf(Key), WalOp::Put, Key, Desired);
    St = OpStatus::Ok;
  });
}

bool Store::cas(Word Key, Word Expected, Word Desired) {
  return cas(Key, Expected, Desired, OpBudget{}) == OpStatus::Ok;
}

OpStatus Store::multiGet(const Word *Keys, size_t N, Word *Out,
                         const OpBudget &B, size_t *Found) const {
  size_t Hits = 0;
  OpStatus St = OpStatus::Ok;
  OpStatus R = runBudgeted(B, St, [&](stm::Txn &Tx) {
    Hits = 0;
    for (size_t I = 0; I < N; ++I) {
      const ShardRep &S = Reps[shardOf(Keys[I])];
      int Slot = findSlotTxn(Tx, S, Keys[I], nullptr);
      Object *V =
          Slot < 0 ? nullptr : Tx.readRef(S.Vals, uint32_t(Slot));
      if (!V) {
        Out[I] = Tombstone;
        continue;
      }
      Out[I] = Tx.read(V, 0);
      if (Out[I] != Tombstone)
        ++Hits;
    }
  });
  if (Found)
    *Found = R == OpStatus::Ok ? Hits : 0;
  return R;
}

size_t Store::multiGet(const Word *Keys, size_t N, Word *Out) const {
  size_t Found = 0;
  multiGet(Keys, N, Out, OpBudget{}, &Found);
  return Found;
}

//===----------------------------------------------------------------------===
// Snapshot plane.
//===----------------------------------------------------------------------===

size_t Store::snapshotMultiGet(const Word *Keys, size_t N, Word *Out) const {
  size_t Hits = 0;
  // Read-only snapshot region: the probe and the value loads all resolve
  // against the pinned epoch's version records. The body cannot conflict
  // (no writes, no validation), so it executes exactly once.
  stm::Txn::runSnapshot([&] {
    stm::Txn &Tx = stm::Txn::forThisThread();
    Hits = 0;
    for (size_t I = 0; I < N; ++I) {
      const ShardRep &S = Reps[shardOf(Keys[I])];
      int Slot = findSlotTxn(Tx, S, Keys[I], nullptr);
      Object *V =
          Slot < 0 ? nullptr : Tx.readRef(S.Vals, uint32_t(Slot));
      if (!V) {
        Out[I] = Tombstone; // Missing or erased as of the pinned epoch.
        continue;
      }
      Out[I] = Tx.read(V, 0);
      if (Out[I] != Tombstone)
        ++Hits;
    }
  });
  return Hits;
}

uint64_t Store::snapshotScan(
    const std::function<void(Word, Word)> &Visit) const {
  uint64_t Epoch = 0;
  // One snapshot region over the whole store: every slot of every shard
  // is read against the same pinned epoch, so the visited set is exactly
  // the commit-order prefix with ticket <= Epoch — the property the
  // checkpoint barrier LSN depends on. Read-only, so the body runs once.
  stm::Txn::runSnapshot([&] {
    stm::Txn &Tx = stm::Txn::forThisThread();
    Epoch = Tx.snapshotEpoch();
    for (const ShardRep &S : Reps) {
      for (uint32_t I = 0; I < Capacity; ++I) {
        Word K = Tx.read(S.Keys, I);
        if (K == 0)
          continue; // Never-used slot.
        Object *V = Tx.readRef(S.Vals, I);
        Word Val = V ? Tx.read(V, 0) : Tombstone;
        // Erased keys (unlinked record, or an in-place Tombstone) are
        // reported as Tombstone: the checkpoint must overwrite whatever
        // baseline a recovering store was seeded with.
        Visit(K - 1, Val);
      }
    }
  });
  return Epoch;
}

bool Store::snapshotGet(Word Key, Word &Out) const {
  Word V = Tombstone;
  snapshotMultiGet(&Key, 1, &V);
  if (V == Tombstone)
    return false;
  Out = V;
  return true;
}

OpStatus Store::readModifyWrite(
    const Word *Keys, size_t N,
    const std::function<void(Word *Vals, size_t N)> &Mutate,
    const OpBudget &B) {
  std::vector<Word> Buf(N);
  std::vector<rt::Object *> Objs(N);
  OpStatus St = OpStatus::Ok;
  return runBudgeted(B, St, [&](stm::Txn &Tx) {
    St = OpStatus::NotFound;
    for (size_t I = 0; I < N; ++I) {
      const ShardRep &S = Reps[shardOf(Keys[I])];
      int Slot = findSlotTxn(Tx, S, Keys[I], nullptr);
      if (Slot < 0)
        return;
      Objs[I] = Tx.readRef(S.Vals, uint32_t(Slot));
      if (!Objs[I])
        return; // Erased.
      Buf[I] = Tx.read(Objs[I], 0);
      if (Buf[I] == Tombstone)
        return;
    }
    Mutate(Buf.data(), N);
    for (size_t I = 0; I < N; ++I) {
      assert(Buf[I] != Tombstone && "Tombstone is reserved");
      Tx.write(Objs[I], 0, Buf[I]);
      logRedo(Tx, shardOf(Keys[I]), WalOp::Put, Keys[I], Buf[I]);
    }
    St = OpStatus::Ok;
  });
}

bool Store::readModifyWrite(
    const Word *Keys, size_t N,
    const std::function<void(Word *Vals, size_t N)> &Mutate) {
  return readModifyWrite(Keys, N, Mutate, OpBudget{}) == OpStatus::Ok;
}

OpStatus Store::rmwAdd(const Word *Keys, size_t N, Word Delta,
                       const OpBudget &B) {
  return readModifyWrite(
      Keys, N,
      [Delta](Word *Vals, size_t Count) {
        for (size_t I = 0; I < Count; ++I)
          Vals[I] += Delta;
      },
      B);
}

bool Store::rmwAdd(const Word *Keys, size_t N, Word Delta) {
  return rmwAdd(Keys, N, Delta, OpBudget{}) == OpStatus::Ok;
}

//===----------------------------------------------------------------------===
// Introspection.
//===----------------------------------------------------------------------===

uint64_t Store::size() const {
  uint64_t Sum = 0;
  for (const ShardRep &S : Reps)
    Sum += stm::ntRead(S.Meta, 0);
  return Sum;
}

rt::Object *Store::valueObjectFor(Word Key) const {
  const ShardRep &S = Reps[shardOf(Key)];
  const uint32_t Mask = Capacity - 1;
  uint32_t I = probeStart(Key, Capacity);
  for (uint32_t N = 0; N < Capacity; ++N, I = (I + 1) & Mask) {
    Word K = stm::ntRead(S.Keys, I);
    if (K == 0)
      return nullptr;
    if (K == Key + 1)
      return Object::fromWord(stm::ntRead(S.Vals, I));
  }
  return nullptr;
}
